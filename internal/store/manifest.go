package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// manifestName is the committed manifest; commits write a temp file and
// rename over it, which is atomic on POSIX filesystems.
const manifestName = "MANIFEST.json"

// SegmentInfo describes one sealed, immutable segment file.
type SegmentInfo struct {
	// File is the segment filename relative to the store root.
	File string `json:"file"`
	// Records is the number of records sealed into the segment.
	Records int64 `json:"records"`
	// Bytes is the total file size including header and framing.
	Bytes int64 `json:"bytes"`
}

// Namespace kinds. The zero value ("") means an append-only JSON segment
// namespace; KindBlob marks a namespace holding one binary artifact.
const (
	KindJSON = ""
	KindBlob = "blob"
)

// BlobInfo describes the single committed binary artifact of a blob
// namespace. Format is the artifact's self-declared format version and
// CRC32 the Castagnoli checksum of the whole payload; readers verify both
// before handing bytes out.
type BlobInfo struct {
	// File is the blob filename relative to the store root.
	File string `json:"file"`
	// Bytes is the exact payload size.
	Bytes int64 `json:"bytes"`
	// CRC32 is the Castagnoli checksum of the payload.
	CRC32 uint32 `json:"crc32"`
	// Format is the writer-declared format version of the payload.
	Format int `json:"format"`
}

// ShardInfo lists one shard's sealed segments in append order.
type ShardInfo struct {
	Segments []SegmentInfo `json:"segments"`
	// NextSeq numbers the shard's next segment file.
	NextSeq int64 `json:"next_seq"`
}

// NamespaceInfo lists the sealed segments of one namespace in append order.
type NamespaceInfo struct {
	Segments []SegmentInfo `json:"segments"`
	// NextSeq numbers the next segment (or blob) file for the namespace.
	NextSeq int64 `json:"next_seq"`
	// Kind distinguishes JSON segment namespaces ("") from binary blob
	// namespaces ("blob").
	Kind string `json:"kind,omitempty"`
	// Blob is the committed artifact of a blob namespace.
	Blob *BlobInfo `json:"blob,omitempty"`
	// Shards, when present, marks a hash-partitioned namespace written by
	// ShardedWriter: records live in len(Shards) independent segment
	// groups and Segments/NextSeq above are unused. Manifests written
	// before sharding existed simply lack the field, so legacy
	// namespaces load unchanged and read as a single shard.
	Shards []*ShardInfo `json:"shards,omitempty"`
}

// shardCount returns how many shards the namespace holds (1 for legacy
// unsharded namespaces).
func (info *NamespaceInfo) shardCount() int {
	if info.Shards == nil {
		return 1
	}
	return len(info.Shards)
}

// manifest is the on-disk catalog of every namespace.
type manifest struct {
	Version    int                       `json:"version"`
	Namespaces map[string]*NamespaceInfo `json:"namespaces"`
}

func newManifest() *manifest {
	return &manifest{Version: 1, Namespaces: map[string]*NamespaceInfo{}}
}

func loadManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return newManifest(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("store: parse manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("store: unsupported manifest version %d", m.Version)
	}
	if m.Namespaces == nil {
		m.Namespaces = map[string]*NamespaceInfo{}
	}
	return &m, nil
}

// commit atomically replaces the manifest on disk.
func (m *manifest) commit(dir string) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: commit manifest: %w", err)
	}
	return nil
}

// namespaceNames returns the sorted namespace names.
func (m *manifest) namespaceNames() []string {
	names := make([]string, 0, len(m.Namespaces))
	for n := range m.Namespaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
