package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

type shardRec struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

func writeSharded(t *testing.T, s *Store, ns string, k, n int) []shardRec {
	t.Helper()
	w, err := s.ShardedWriter(ns, k)
	if err != nil {
		t.Fatalf("ShardedWriter: %v", err)
	}
	var recs []shardRec
	for i := 0; i < n; i++ {
		r := shardRec{ID: fmt.Sprintf("s%d", i), N: i}
		recs = append(recs, r)
		if err := w.Append(r.ID, r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return recs
}

func TestShardForStableAndBounded(t *testing.T) {
	for _, k := range []int{1, 2, 7, 16} {
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("s%d", i)
			a, b := ShardFor(key, k), ShardFor(key, k)
			if a != b {
				t.Fatalf("ShardFor(%q,%d) unstable: %d vs %d", key, k, a, b)
			}
			if a < 0 || a >= k {
				t.Fatalf("ShardFor(%q,%d) = %d out of range", key, k, a)
			}
		}
	}
	if got := ShardFor("anything", 1); got != 0 {
		t.Fatalf("single shard must route to 0, got %d", got)
	}
	// The assignment must spread keys: with 1000 keys over 8 shards,
	// every shard should see some.
	counts := make([]int, 8)
	for i := 0; i < 1000; i++ {
		counts[ShardFor(fmt.Sprintf("s%d", i), 8)]++
	}
	for sh, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys", sh)
		}
	}
}

func TestShardedRoundTripAndScanOrder(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := writeSharded(t, s, "gen/items", 4, 200)

	k, err := s.ShardCount("gen/items")
	if err != nil || k != 4 {
		t.Fatalf("ShardCount = %d, %v; want 4", k, err)
	}

	// Per-shard scans: every record lands on its ShardFor shard, in
	// append order within the shard.
	var got []shardRec
	for shard := 0; shard < k; shard++ {
		prev := -1
		err := ScanShardAsContext(context.Background(), s, "gen/items", shard, func(r shardRec) error {
			if ShardFor(r.ID, k) != shard {
				t.Fatalf("record %s scanned from shard %d, routes to %d", r.ID, shard, ShardFor(r.ID, k))
			}
			if r.N <= prev {
				t.Fatalf("shard %d out of append order: %d after %d", shard, r.N, prev)
			}
			prev = r.N
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("ScanShard %d: %v", shard, err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, wrote %d", len(got), len(want))
	}

	// A plain Scan over the sharded namespace still sees every record.
	n := 0
	if err := s.Scan("gen/items", func([]byte) error { n++; return nil }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != len(want) {
		t.Fatalf("Scan saw %d records, want %d", n, len(want))
	}

	st, err := s.Stats("gen/items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != int64(len(want)) || st.Shards != 4 {
		t.Fatalf("Stats = %+v, want %d records over 4 shards", st, len(want))
	}
}

func TestShardedReopenAppendsAndGuards(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSharded(t, s, "gen/items", 3, 50)

	// Wrong shard count on reopen is rejected.
	if _, err := s.ShardedWriter("gen/items", 5); err == nil {
		t.Fatal("reopening with a different shard count must fail")
	}
	// A legacy Writer cannot append to a sharded namespace.
	if _, err := s.Writer("gen/items"); err == nil {
		t.Fatal("Writer on a sharded namespace must fail")
	}
	// A ShardedWriter cannot take over a legacy namespace.
	w, err := s.Writer("legacy/items")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(shardRec{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ShardedWriter("legacy/items", 2); err == nil {
		t.Fatal("ShardedWriter on a legacy namespace must fail")
	}

	// Same count appends more records, visible after a fresh open.
	writeSharded(t, s, "gen/items", 3, 50)
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s2.Stats("gen/items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 100 {
		t.Fatalf("after reopen+append Stats.Records = %d, want 100", st.Records)
	}
}

func TestLegacyNamespaceReadsAsSingleShard(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Writer("old/ns")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(shardRec{ID: fmt.Sprintf("s%d", i), N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	k, err := s.ShardCount("old/ns")
	if err != nil || k != 1 {
		t.Fatalf("legacy ShardCount = %d, %v; want 1", k, err)
	}
	n := 0
	if err := s.ScanShard("old/ns", 0, func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("legacy shard 0 scan saw %d records, want 10", n)
	}
	if err := s.ScanShard("old/ns", 1, func([]byte) error { return nil }); err == nil {
		t.Fatal("scanning shard 1 of a legacy namespace must fail")
	}
}

func TestScanShardsParallelCoversEverything(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := writeSharded(t, s, "gen/items", 8, 500)
	var mu sync.Mutex
	seen := map[string]bool{}
	err = s.ScanShardsParallel(context.Background(), "gen/items", 4, func(shard int, payload []byte) error {
		mu.Lock()
		defer mu.Unlock()
		seen[string(payload)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("parallel scan saw %d distinct records, want %d", len(seen), len(want))
	}
}

func TestShardedCompactPreservesRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SegmentBytes = 256 // force many small segments
	writeSharded(t, s, "gen/items", 3, 100)
	writeSharded(t, s, "gen/items", 3, 100) // second batch: more segments

	before, _ := s.Stats("gen/items")
	if before.Segments <= 3 {
		t.Fatalf("want many segments before compaction, got %d", before.Segments)
	}
	var wantIDs []string
	if err := s.Scan("gen/items", func(p []byte) error {
		wantIDs = append(wantIDs, string(append([]byte(nil), p...)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact("gen/items"); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := s.Stats("gen/items")
	if after.Segments != 3 {
		t.Fatalf("after compaction want 3 segments (one per shard), got %d", after.Segments)
	}
	if after.Records != before.Records {
		t.Fatalf("compaction changed record count: %d -> %d", before.Records, after.Records)
	}
	var gotIDs []string
	if err := s.Scan("gen/items", func(p []byte) error {
		gotIDs = append(gotIDs, string(append([]byte(nil), p...)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(wantIDs)
	sort.Strings(gotIDs)
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("compaction lost records: %d vs %d", len(gotIDs), len(wantIDs))
	}
	for i := range gotIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("record %d differs after compaction", i)
		}
	}
}

func TestSweepRemovesUncommittedShardSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSharded(t, s, "gen/items", 2, 20)

	// Simulate a crash: an orphan segment file in a shard directory that
	// never made it into the manifest.
	orphan := filepath.Join(dir, shardDir("gen/items", 1), "seg-000099.csg")
	if err := os.WriteFile(orphan, []byte("CSCSEG01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan shard segment survived the sweep")
	}
	// Committed segments survive.
	st, err := s.Stats("gen/items")
	if err != nil || st.Records != 20 {
		t.Fatalf("committed records damaged by sweep: %+v, %v", st, err)
	}
}

func TestScanAsContextCancels(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSharded(t, s, "gen/items", 2, 50)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err = ScanAsContext(ctx, s, "gen/items", func(r shardRec) error {
		n++
		if n == 5 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("canceled scan must return an error")
	}
	if n > 6 {
		t.Fatalf("scan ran %d records past cancellation", n)
	}
}
