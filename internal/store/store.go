package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DefaultSegmentBytes is the rotation threshold for active segments.
const DefaultSegmentBytes = 8 << 20

// ErrWritersOpen marks a Reload refused because the handle has open
// writers whose pending commits would race the fresh manifest. Callers
// that poll Reload opportunistically (a serving replica's health probe,
// an embedded reader next to a live crawler) match it with errors.Is to
// tell "busy, try later" apart from a genuinely unreadable manifest.
var ErrWritersOpen = errors.New("store: open writers")

// Store is a directory-rooted collection of append-only JSON namespaces.
// A Store is safe for concurrent use; each namespace admits one open
// Writer at a time while any number of readers scan committed data.
type Store struct {
	dir      string
	readOnly bool

	mu       sync.Mutex
	manifest *manifest
	writers  map[string]bool // namespaces with an open writer

	// SegmentBytes is the active-segment rotation threshold; set before
	// opening writers. Defaults to DefaultSegmentBytes.
	SegmentBytes int64
}

// Open opens (creating if necessary) a store rooted at dir.
func Open(dir string) (*Store, error) {
	return open(dir, false)
}

// OpenReadOnly opens a store for reading only: Writer, PutBlob and
// Compact are rejected, and the crash-debris sweep is skipped. The
// sweep makes read-only opens safe to run concurrently with a live
// writer process (e.g. crowdserve polling a store a crawler is still
// appending to): a writing handle's Open would delete the other
// process's in-flight *.tmp manifest commit and uncommitted segment
// files as crash leftovers, corrupting the writer mid-commit.
func OpenReadOnly(dir string) (*Store, error) {
	return open(dir, true)
}

func open(dir string, readOnly bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	m, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if !readOnly {
		if err := sweepOrphans(dir, m); err != nil {
			return nil, err
		}
	}
	return &Store{
		dir:          dir,
		readOnly:     readOnly,
		manifest:     m,
		writers:      map[string]bool{},
		SegmentBytes: DefaultSegmentBytes,
	}, nil
}

// Reload re-reads the manifest from disk, making namespaces committed by
// other processes (e.g. a crawler appending to a store a server is
// serving from) visible to this handle. It is a reader-side API: a
// handle with open writers refuses to reload, because the fresh
// manifest would race the writers' pending commits. Data files are
// immutable once committed, so readers resolved against the old
// manifest stay valid across a reload.
func (s *Store) Reload() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.writers) > 0 {
		return fmt.Errorf("store: reload: %d namespaces have open writers: %w", len(s.writers), ErrWritersOpen)
	}
	m, err := loadManifest(s.dir)
	if err != nil {
		return fmt.Errorf("store: reload: %w", err)
	}
	s.manifest = m
	return nil
}

// sweepOrphans removes the debris a crash mid-commit can leave behind:
// *.tmp files from interrupted manifest commits, and segment/blob files
// that were written but never committed to the manifest. Uncommitted
// files are invisible to readers, but they occupy the exact path the
// namespace's next write reserves (segment and blob files are created
// with O_EXCL at NextSeq), so a crashed PutBlob or Compact would
// otherwise wedge the namespace permanently. Only files matching the
// store's own naming patterns are touched; anything else in the
// directory is left alone.
func sweepOrphans(dir string, m *manifest) error {
	committed := map[string]bool{}
	for _, info := range m.Namespaces {
		for _, seg := range info.Segments {
			committed[filepath.Join(dir, seg.File)] = true
		}
		for _, sh := range info.Shards {
			for _, seg := range sh.Segments {
				committed[filepath.Join(dir, seg.File)] = true
			}
		}
		if info.Blob != nil {
			committed[filepath.Join(dir, info.Blob.File)] = true
		}
	}
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		uncommittedData := (strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".csg") ||
			strings.HasPrefix(name, "blob-") && strings.HasSuffix(name, ".bin")) &&
			!committed[path]
		if !strings.HasSuffix(name, ".tmp") && !uncommittedData {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("store: sweep orphan %s: %w", name, err)
		}
		return nil
	})
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validNamespace restricts names to path-safe segments like
// "angellist/startups".
func validNamespace(ns string) error {
	if ns == "" {
		return errors.New("store: empty namespace")
	}
	for _, part := range strings.Split(ns, "/") {
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("store: invalid namespace %q", ns)
		}
		for _, r := range part {
			if !(r == '-' || r == '_' || r == '.' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				return fmt.Errorf("store: invalid namespace %q", ns)
			}
		}
	}
	return nil
}

// nsDir converts a namespace into its directory name under the root. The
// mapping must be injective: "a/b" flattens to "a__b", which would collide
// with the distinct valid namespace "a__b". Escaping every underscore in a
// part as "_x" first means escaped parts never contain "__", so the "__"
// separator is unambiguous and two namespaces never share a directory.
func nsDir(ns string) string {
	parts := strings.Split(ns, "/")
	for i, p := range parts {
		parts[i] = strings.ReplaceAll(p, "_", "_x")
	}
	return strings.Join(parts, "__")
}

// Writer appends JSON records to one namespace. Writers are not safe for
// concurrent use; parallel producers should marshal through a channel or
// open distinct namespaces.
type Writer struct {
	s       *Store
	ns      string
	seg     *segmentWriter
	sealed  []SegmentInfo
	seq     int64
	closed  bool
	maxSize int64
}

// Writer opens an appender for the namespace. It returns an error if a
// writer is already open for it.
func (s *Store) Writer(ns string) (*Writer, error) {
	if s.readOnly {
		return nil, fmt.Errorf("store: namespace %q: handle is read-only", ns)
	}
	if err := validNamespace(ns); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writers[ns] {
		return nil, fmt.Errorf("store: namespace %q already has an open writer", ns)
	}
	if info := s.manifest.Namespaces[ns]; info != nil {
		if info.Kind == KindBlob {
			return nil, fmt.Errorf("store: namespace %q holds a binary blob, not JSON segments", ns)
		}
		if info.Shards != nil {
			return nil, fmt.Errorf("store: namespace %q is sharded; use ShardedWriter", ns)
		}
	}
	if err := os.MkdirAll(filepath.Join(s.dir, nsDir(ns)), 0o755); err != nil {
		return nil, err
	}
	info := s.manifest.Namespaces[ns]
	var seq int64
	if info != nil {
		seq = info.NextSeq
	}
	s.writers[ns] = true
	return &Writer{s: s, ns: ns, seq: seq, maxSize: s.SegmentBytes}, nil
}

func (w *Writer) segmentPath(seq int64) string {
	return filepath.Join(w.s.dir, nsDir(w.ns), fmt.Sprintf("seg-%06d.csg", seq))
}

// Append marshals v as JSON and appends it. Records become visible to
// readers only after Close (or Flush) commits the manifest.
func (w *Writer) Append(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal record: %w", err)
	}
	return w.AppendRaw(payload)
}

// AppendRaw appends a pre-marshaled JSON payload.
func (w *Writer) AppendRaw(payload []byte) error {
	if w.closed {
		return errors.New("store: append to closed writer")
	}
	if w.seg == nil {
		seg, err := newSegmentWriter(w.segmentPath(w.seq))
		if err != nil {
			return err
		}
		w.seq++
		w.seg = seg
	}
	if err := w.seg.append(payload); err != nil {
		return err
	}
	if w.seg.bytes >= w.maxSize {
		return w.rotate()
	}
	return nil
}

func (w *Writer) rotate() error {
	records, size, err := w.seg.seal()
	if err != nil {
		return err
	}
	w.sealed = append(w.sealed, SegmentInfo{
		File:    filepath.Join(nsDir(w.ns), filepath.Base(w.seg.path)),
		Records: records,
		Bytes:   size,
	})
	w.seg = nil
	return nil
}

// Flush seals the active segment (if any) and commits all sealed segments
// to the manifest, making everything appended so far durable and visible.
func (w *Writer) Flush() error {
	if w.closed {
		return errors.New("store: flush of closed writer")
	}
	if w.seg != nil && w.seg.records > 0 {
		if err := w.rotate(); err != nil {
			return err
		}
	} else if w.seg != nil {
		w.seg.abort()
		w.seg = nil
		w.seq--
	}
	if len(w.sealed) == 0 {
		return nil
	}
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	info := w.s.manifest.Namespaces[w.ns]
	if info == nil {
		info = &NamespaceInfo{}
		w.s.manifest.Namespaces[w.ns] = info
	}
	info.Segments = append(info.Segments, w.sealed...)
	info.NextSeq = w.seq
	if err := w.s.manifest.commit(w.s.dir); err != nil {
		// Roll the in-memory manifest back so a retry does not double-add.
		info.Segments = info.Segments[:len(info.Segments)-len(w.sealed)]
		return err
	}
	w.sealed = w.sealed[:0]
	return nil
}

// Close flushes and releases the namespace writer slot. Close is
// idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	err := w.Flush()
	w.closed = true
	w.s.mu.Lock()
	delete(w.s.writers, w.ns)
	w.s.mu.Unlock()
	return err
}

// Scan streams every committed record of the namespace, in append order,
// to fn. The payload slice is reused; fn must copy it if retained. Scan
// verifies record CRCs and per-segment record counts, returning an error
// wrapping ErrCorrupt on integrity failure (or ErrSegmentMissing when a
// manifest-listed segment file is absent). Scanning an unknown namespace
// is an error.
func (s *Store) Scan(ns string, fn func(payload []byte) error) error {
	segs, err := s.snapshot(ns)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := scanSegment(filepath.Join(s.dir, seg.File), seg.Records, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanContext is Scan bounded by the caller's context: cancellation is
// checked before every record, so a deadline cuts a long scan off
// mid-stream instead of streaming the namespace to completion. It is the
// deadline-propagation hook the serving layer relies on.
func (s *Store) ScanContext(ctx context.Context, ns string, fn func(payload []byte) error) error {
	return s.Scan(ns, func(payload []byte) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("store: scan %q: %w", ns, err)
		}
		return fn(payload)
	})
}

// snapshot returns the committed segment list for a namespace. A
// sharded namespace's segments are listed shard 0 first, so a plain
// Scan still sees every record (per-shard append order, shards
// concatenated).
func (s *Store) snapshot(ns string) ([]SegmentInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.manifest.Namespaces[ns]
	if info == nil {
		return nil, fmt.Errorf("store: unknown namespace %q", ns)
	}
	if info.Kind == KindBlob {
		return nil, fmt.Errorf("store: namespace %q holds a binary blob, not JSON segments", ns)
	}
	if info.Shards != nil {
		var segs []SegmentInfo
		for _, sh := range info.Shards {
			segs = append(segs, sh.Segments...)
		}
		return segs, nil
	}
	segs := make([]SegmentInfo, len(info.Segments))
	copy(segs, info.Segments)
	return segs, nil
}

// ScanAs streams every committed record of the namespace unmarshaled into
// T.
func ScanAs[T any](s *Store, ns string, fn func(rec T) error) error {
	return s.Scan(ns, func(payload []byte) error {
		var rec T
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("store: unmarshal record in %q: %w", ns, err)
		}
		return fn(rec)
	})
}

// ScanAsContext is ScanAs bounded by the caller's context, checked
// before every record — the ctx-first variant library code should use
// so a deadline cuts long typed scans off mid-stream.
func ScanAsContext[T any](ctx context.Context, s *Store, ns string, fn func(rec T) error) error {
	return s.ScanContext(ctx, ns, func(payload []byte) error {
		var rec T
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("store: unmarshal record in %q: %w", ns, err)
		}
		return fn(rec)
	})
}

// ReadAll collects every record of a namespace into a slice of T. Intended
// for tests and moderate-sized namespaces; large scans should stream.
func ReadAll[T any](s *Store, ns string) ([]T, error) {
	var out []T
	err := ScanAs(s, ns, func(rec T) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Namespaces returns the sorted names of all committed namespaces.
func (s *Store) Namespaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifest.namespaceNames()
}

// NamespaceStats summarizes a namespace's committed contents.
type NamespaceStats struct {
	Segments int
	Records  int64
	Bytes    int64
	// Kind mirrors the manifest's namespace kind ("" JSON, "blob").
	Kind string
	// Shards is the namespace's shard count (1 for legacy unsharded
	// namespaces, 0 for blobs).
	Shards int
}

// Stats returns committed accounting for the namespace, summed across
// shards for sharded namespaces.
func (s *Store) Stats(ns string) (NamespaceStats, error) {
	s.mu.Lock()
	if info := s.manifest.Namespaces[ns]; info != nil && info.Kind == KindBlob {
		st := NamespaceStats{Kind: KindBlob}
		if info.Blob != nil {
			st.Bytes = info.Blob.Bytes
			st.Records = 1
		}
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()
	segs, err := s.snapshot(ns)
	if err != nil {
		return NamespaceStats{}, err
	}
	var st NamespaceStats
	st.Shards, _ = s.ShardCount(ns)
	st.Segments = len(segs)
	for _, seg := range segs {
		st.Records += seg.Records
		st.Bytes += seg.Bytes
	}
	return st, nil
}

// Compact rewrites all of a namespace's segments into a single new segment
// per shard and commits a manifest pointing only at them, reclaiming
// per-segment overhead after many small flushes. Concurrent readers
// holding the old snapshot keep working because old files are removed
// only after commit.
func (s *Store) Compact(ns string) error {
	if s.readOnly {
		return fmt.Errorf("store: namespace %q: handle is read-only", ns)
	}
	segs, err := s.snapshot(ns)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.writers[ns] {
		s.mu.Unlock()
		return fmt.Errorf("store: cannot compact %q while a writer is open", ns)
	}
	if s.manifest.Namespaces[ns].Shards != nil {
		// Reserve the writer slot for the whole sharded compaction.
		s.writers[ns] = true
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			delete(s.writers, ns)
			s.mu.Unlock()
		}()
		return s.compactShards(ns)
	}
	// Reserve the writer slot so appends cannot interleave with compaction.
	s.writers[ns] = true
	info := s.manifest.Namespaces[ns]
	seq := info.NextSeq
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.writers, ns)
		s.mu.Unlock()
	}()

	path := filepath.Join(s.dir, nsDir(ns), fmt.Sprintf("seg-%06d.csg", seq))
	sw, err := newSegmentWriter(path)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		err := scanSegment(filepath.Join(s.dir, seg.File), seg.Records, func(payload []byte) error {
			return sw.append(payload)
		})
		if err != nil {
			sw.abort()
			return err
		}
	}
	records, size, err := sw.seal()
	if err != nil {
		return err
	}

	s.mu.Lock()
	info = s.manifest.Namespaces[ns]
	old := info.Segments
	info.Segments = []SegmentInfo{{
		File:    filepath.Join(nsDir(ns), filepath.Base(path)),
		Records: records,
		Bytes:   size,
	}}
	info.NextSeq = seq + 1
	if err := s.manifest.commit(s.dir); err != nil {
		info.Segments = old
		info.NextSeq = seq
		s.mu.Unlock()
		os.Remove(path)
		return err
	}
	s.mu.Unlock()
	for _, seg := range old {
		os.Remove(filepath.Join(s.dir, seg.File))
	}
	return nil
}
