package leakcheck

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeTB records cleanups and errors instead of failing the real test,
// so the failure path of Check is itself testable.
type fakeTB struct {
	testing.TB // panics on unimplemented methods: the test only uses these three
	cleanups   []func()
	errors     []string
}

func (f *fakeTB) Helper()           {}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}

func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

func TestCheckDetectsLeak(t *testing.T) {
	f := &fakeTB{}
	Check(f, Deadline(50*time.Millisecond))

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	t.Cleanup(func() { close(release) })

	f.runCleanups()
	if len(f.errors) == 0 {
		t.Fatal("Check did not report the blocked goroutine")
	}
	if !strings.Contains(f.errors[0], "leaked goroutine") {
		t.Fatalf("unexpected error text: %s", f.errors[0])
	}
	if !strings.Contains(f.errors[0], "TestCheckDetectsLeak") {
		t.Fatalf("leak report does not name the spawning test:\n%s", f.errors[0])
	}
}

func TestCheckWaitsForLateExit(t *testing.T) {
	f := &fakeTB{}
	Check(f, Deadline(2*time.Second))

	started := make(chan struct{})
	go func() {
		close(started)
		time.Sleep(30 * time.Millisecond) // exits shortly AFTER the cleanup starts polling
	}()
	<-started

	f.runCleanups()
	if len(f.errors) != 0 {
		t.Fatalf("Check flagged a goroutine that exits within the deadline: %v", f.errors)
	}
}

func TestIgnorePrefixExemptsGoroutine(t *testing.T) {
	f := &fakeTB{}
	Check(f, Deadline(50*time.Millisecond),
		IgnorePrefix("crowdscope/internal/leakcheck.TestIgnorePrefixExemptsGoroutine"))

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	t.Cleanup(func() { close(release) })

	f.runCleanups()
	if len(f.errors) != 0 {
		t.Fatalf("IgnorePrefix did not exempt the creator-matched goroutine: %v", f.errors)
	}
}

const sampleDump = `goroutine 1 [running]:
main.main()
	/src/main.go:10 +0x20

goroutine 18 [chan receive]:
crowdscope/internal/parallel.Each.func1(0xc000010000)
	/src/pool.go:42 +0x65
created by crowdscope/internal/parallel.Each in goroutine 1
	/src/pool.go:40 +0x1c4

goroutine 19 [select]:
net/http.(*persistConn).readLoop(0xc0001b2000)
	/go/src/net/http/transport.go:2218 +0xd25
created by net/http.(*Transport).dialConn in goroutine 12
	/go/src/net/http/transport.go:1798 +0x152f

garbage that is not a goroutine header`

func TestParseStacks(t *testing.T) {
	gs := parseStacks(sampleDump)
	if len(gs) != 3 {
		t.Fatalf("parsed %d goroutines, want 3", len(gs))
	}
	main := gs[0]
	if main.ID != 1 || main.State != "running" || main.Top != "main.main" || main.Creator != "" {
		t.Fatalf("main goroutine parsed wrong: %s", main)
	}
	worker := gs[1]
	if worker.ID != 18 || worker.State != "chan receive" {
		t.Fatalf("worker header parsed wrong: %s", worker)
	}
	if worker.Top != "crowdscope/internal/parallel.Each.func1" {
		t.Fatalf("worker top frame = %q", worker.Top)
	}
	if worker.Creator != "crowdscope/internal/parallel.Each" {
		t.Fatalf("worker creator = %q", worker.Creator)
	}
	if !strings.Contains(worker.Full, "pool.go:42") {
		t.Fatalf("Full lost the verbatim block: %q", worker.Full)
	}
}

func TestDefaultIgnoreFiltersHTTPKeepAlive(t *testing.T) {
	gs := parseStacks(sampleDump)
	conn := gs[2]
	if !ignored(conn, defaultIgnore) {
		t.Fatalf("persistConn goroutine not filtered: %s", conn)
	}
	if ignored(gs[1], defaultIgnore) {
		t.Fatalf("module worker goroutine wrongly filtered: %s", gs[1])
	}
}

func TestFuncNameKeepsReceiverParens(t *testing.T) {
	if got := funcName("net/http.(*persistConn).readLoop(0xc0001b2000)"); got != "net/http.(*persistConn).readLoop" {
		t.Fatalf("funcName = %q", got)
	}
	if got := funcName("frame-without-args"); got != "frame-without-args" {
		t.Fatalf("funcName = %q", got)
	}
}

func TestCountSeesLiveGoroutines(t *testing.T) {
	before := Count()
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	if during := Count(); during <= before-1 {
		t.Fatalf("Count() = %d during spawn, baseline %d", during, before)
	}
	close(release)
}
