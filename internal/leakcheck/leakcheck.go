// Package leakcheck is the repository's runtime goroutine-leak harness:
// the dynamic counterpart to crowdlint's static goleak analyzer. A test
// calls Check(t) as its FIRST statement; leakcheck snapshots the live
// goroutines, and a registered cleanup re-snapshots at test end, failing
// the test with full stacks if goroutines created during the test are
// still alive. Because cleanups run LIFO, calling Check first means the
// leak check runs last — after the test's own cleanups (server
// shutdowns, pool drains) have had their chance to join workers.
//
// Goroutine exits race test completion, so the cleanup retries with
// exponential backoff until a deadline (default 2s) before declaring a
// leak. Known-benign goroutines — the test runner, the runtime's own
// workers, signal handling, and net/http keep-alive connections — are
// filtered by stack prefix; tests add their own with IgnorePrefix.
//
// The package is stdlib-only and allocation-light: one runtime.Stack
// snapshot per attempt, no background state.
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// defaultIgnore filters goroutines no test owns. An entry matches when
// the goroutine's top frame or its "created by" function starts with it.
var defaultIgnore = []string{
	"testing.",              // the test runner and parked parallel subtests
	"runtime.",              // GC workers, the finalizer goroutine
	"os/signal.",            // signal.Notify's receive loop
	"net/http.(*Transport)", // keep-alive conns created by Transport.dialConn
	"net/http.(*persistConn)",
}

// config is the per-Check tuning, built from Options.
type config struct {
	deadline time.Duration
	ignore   []string
}

// Option customizes one Check call.
type Option func(*config)

// Deadline bounds how long the cleanup waits for straggler goroutines
// to exit before declaring them leaked.
func Deadline(d time.Duration) Option { return func(c *config) { c.deadline = d } }

// IgnorePrefix exempts goroutines whose top frame or creator function
// starts with the prefix — for libraries with sanctioned process-lifetime
// workers.
func IgnorePrefix(p string) Option { return func(c *config) { c.ignore = append(c.ignore, p) } }

// Check snapshots the live goroutines and registers a cleanup that fails
// t if goroutines created during the test outlive it. Call it first in
// the test body.
func Check(t testing.TB, opts ...Option) {
	t.Helper()
	c := &config{deadline: 2 * time.Second, ignore: defaultIgnore}
	for _, o := range opts {
		o(c)
	}
	base := map[int]bool{}
	for _, g := range snapshot() {
		base[g.ID] = true
	}
	t.Cleanup(func() {
		for _, g := range waitDrain(base, c) {
			t.Errorf("leakcheck: leaked goroutine %d [%s]:\n%s", g.ID, g.State, g.Full)
		}
	})
}

// waitDrain polls for leak candidates with exponential backoff until
// none remain or the deadline passes, and returns the survivors.
func waitDrain(base map[int]bool, c *config) []goroutine {
	deadline := time.Now().Add(c.deadline)
	delay := time.Millisecond
	for {
		leaked := leakedNow(base, c)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		//lint:ignore ctxthread test-cleanup backoff: the deadline above bounds it, and a testing.TB cleanup has no ctx to thread
		time.Sleep(delay)
		if delay *= 2; delay > 100*time.Millisecond {
			delay = 100 * time.Millisecond
		}
	}
}

// leakedNow returns the goroutines alive right now that are neither in
// the baseline nor filtered, sorted by ID for stable output.
func leakedNow(base map[int]bool, c *config) []goroutine {
	var out []goroutine
	for _, g := range snapshot() {
		if base[g.ID] || ignored(g, c.ignore) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// ignored reports whether a goroutine's top frame or creator matches an
// ignore prefix.
func ignored(g goroutine, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(g.Top, p) || strings.HasPrefix(g.Creator, p) {
			return true
		}
	}
	return false
}

// goroutine is one parsed stack block from runtime.Stack.
type goroutine struct {
	ID      int
	State   string // "chan receive", "select", ...
	Top     string // innermost frame's function
	Creator string // "created by" function, "" for main/runtime goroutines
	Full    string // the verbatim block, for failure messages
}

// snapshot captures and parses all goroutine stacks, growing the buffer
// until the dump fits.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return parseStacks(string(buf))
}

// parseStacks splits a runtime.Stack(all=true) dump into goroutines.
// Malformed blocks are skipped, not errors: the format is stable but
// owned by the runtime, and a missed goroutine only weakens one check.
func parseStacks(dump string) []goroutine {
	var out []goroutine
	for _, block := range strings.Split(strings.TrimSpace(dump), "\n\n") {
		lines := strings.Split(block, "\n")
		rest, ok := strings.CutPrefix(lines[0], "goroutine ")
		if !ok {
			continue
		}
		idStr, state, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue
		}
		g := goroutine{ID: id, State: strings.Trim(state, "[]:"), Full: block}
		for _, ln := range lines[1:] {
			if strings.HasPrefix(ln, "\t") {
				continue // file:line detail
			}
			if cb, found := strings.CutPrefix(ln, "created by "); found {
				creator, _, _ := strings.Cut(cb, " in goroutine")
				g.Creator = strings.TrimSpace(creator)
				continue
			}
			if g.Top == "" {
				g.Top = funcName(ln)
			}
		}
		out = append(out, g)
	}
	return out
}

// funcName strips a frame line's argument list: the cut point is the
// LAST '(' because method frames carry parenthesized receivers —
// "pkg.(*T).m(0x...)".
func funcName(line string) string {
	if i := strings.LastIndex(line, "("); i > 0 {
		return line[:i]
	}
	return line
}

// Count returns how many goroutines are currently alive after filtering
// with the default ignore set — the building block for "drained back to
// baseline" regression assertions.
func Count() int {
	n := 0
	for _, g := range snapshot() {
		if !ignored(g, defaultIgnore) {
			n++
		}
	}
	return n
}

// String renders a goroutine for debugging helpers.
func (g goroutine) String() string {
	return fmt.Sprintf("goroutine %d [%s] %s (created by %s)", g.ID, g.State, g.Top, g.Creator)
}
