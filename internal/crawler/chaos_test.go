package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crowdscope/internal/apiserver"
	"crowdscope/internal/ecosystem"
	"crowdscope/internal/leakcheck"
	"crowdscope/internal/store"
)

// canonical serializes the data a crawl collected (not its operational
// stats, which legitimately differ between a clean run and a faulted,
// resumed one). encoding/json writes map keys sorted, so equal contents
// give equal bytes.
func canonical(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Startups   map[string]*ecosystem.Startup
		Users      map[string]*ecosystem.User
		CrunchBase map[string]*ecosystem.CrunchBaseProfile
		Facebook   map[string]*ecosystem.FacebookProfile
		Twitter    map[string]*ecosystem.TwitterProfile
	}{snap.Startups, snap.Users, snap.CrunchBase, snap.Facebook, snap.Twitter})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// killSwitch is a RoundTripper that simulates a process crash: after
// limit requests it cancels the crawl's context and fails every further
// request.
type killSwitch struct {
	n      atomic.Int64
	limit  int64
	cancel context.CancelFunc
}

var errKilled = errors.New("chaos: process killed")

func (k *killSwitch) RoundTrip(req *http.Request) (*http.Response, error) {
	if k.n.Add(1) > k.limit {
		k.cancel()
		return nil, errKilled
	}
	return http.DefaultTransport.RoundTrip(req)
}

// referenceCrawl runs one fault-free crawl of the shared world and
// returns its canonical bytes.
func referenceCrawl(t *testing.T) []byte {
	t.Helper()
	// The chaos runs re-fetch augmentation batches after kills, so give
	// the simulated Twitter window real-clock headroom everywhere; the
	// injected 429 bursts still exercise the rate-limit recovery path.
	_, _, client := harness(t, apiserver.Options{TwitterLimit: 1 << 30})
	cr := &Crawler{Client: client, Workers: 8}
	snap, err := cr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return canonical(t, snap)
}

// TestChaosCrawlKillResumeBitIdentical is the headline chaos suite: at
// several (seed, fault-rate) combos the crawl runs against a server
// injecting 5xx errors, 429 bursts, slow responses, truncated bodies and
// connection resets; it is repeatedly killed mid-run and resumed from its
// checkpoints; and the final snapshot must be bit-identical to a
// fault-free crawl of the same world.
func TestChaosCrawlKillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not short")
	}
	leakcheck.Check(t)
	ref := referenceCrawl(t)
	w := testWorld(t)

	cases := []struct {
		name   string
		faults apiserver.FaultConfig
		killAt int64 // base request budget per attempt
	}{
		{
			name: "light mixed faults",
			faults: apiserver.FaultConfig{
				Seed: 1,
				Default: apiserver.FaultProfile{
					ServerError: 0.03, RateLimit: 0.01, Slow: 0.005, Truncate: 0.02, Reset: 0.02,
				},
				SlowDelay: time.Millisecond,
			},
			killAt: 500,
		},
		{
			name: "heavy 5xx and resets",
			faults: apiserver.FaultConfig{
				Seed: 7,
				Default: apiserver.FaultProfile{
					ServerError: 0.08, Reset: 0.05,
				},
			},
			killAt: 400,
		},
		{
			name: "rate-limit bursts and truncation",
			faults: apiserver.FaultConfig{
				Seed: 99,
				Default: apiserver.FaultProfile{
					RateLimit: 0.04, Truncate: 0.06,
				},
				BurstLen: 3,
			},
			killAt: 600,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			faults := tc.faults
			srv := apiserver.New(w, apiserver.Options{
				Tokens:       []string{"t1", "t2", "t3"},
				TwitterLimit: 1 << 30,
				Faults:       &faults,
			})
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			dir := t.TempDir()

			var snap *Snapshot
			kills := 0
			const maxAttempts = 25
			for attempt := 0; ; attempt++ {
				if attempt >= maxAttempts {
					t.Fatalf("crawl did not finish after %d attempts (%d kills)", attempt, kills)
				}
				// Every attempt simulates a fresh process: new client, new
				// store handle over the same directory.
				st, err := store.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				client, err := NewClient(ts.URL, []string{"t1", "t2", "t3"})
				if err != nil {
					t.Fatal(err)
				}
				client.Sleep = func(time.Duration) {}
				client.MaxRetries = 10
				ctx, cancel := context.WithCancel(context.Background())
				ks := &killSwitch{cancel: cancel}
				// The budget grows so a round larger than the initial
				// budget still completes eventually; late attempts run
				// unrestricted.
				ks.limit = tc.killAt + int64(attempt)*tc.killAt
				if attempt >= 8 {
					ks.limit = 1 << 60
				}
				client.HTTP = &http.Client{Transport: ks}

				cr := &Crawler{
					Client:  client,
					Workers: 4,
					Checkpoint: &CheckpointConfig{
						Store:        st,
						AugmentBatch: 100,
						Resume:       attempt > 0,
					},
				}
				snap, err = cr.Run(ctx)
				cancel()
				if err == nil {
					if attempt > 0 && !snap.Stats.Resumed {
						t.Fatal("finishing attempt did not resume from a checkpoint")
					}
					break
				}
				kills++
			}
			if kills == 0 {
				t.Fatal("the crawl was never killed; lower the kill budget")
			}
			if got := canonical(t, snap); !bytes.Equal(got, ref) {
				t.Fatalf("killed+resumed snapshot diverges from fault-free crawl: %d vs %d canonical bytes",
					len(got), len(ref))
			}
			if srv.FaultStats().Total() == 0 {
				t.Error("fault injector never fired; the chaos run was not chaotic")
			}
		})
	}
}

// TestChaosZeroFaultRunInjectsNothing is the determinism sanity check: a
// configured injector with all-zero rates must not perturb the crawl at
// all, and the result must equal the reference bit for bit.
func TestChaosZeroFaultRunInjectsNothing(t *testing.T) {
	ref := referenceCrawl(t)
	w := testWorld(t)
	srv := apiserver.New(w, apiserver.Options{
		Tokens:       []string{"t1", "t2", "t3"},
		TwitterLimit: 1 << 30,
		Faults:       &apiserver.FaultConfig{Seed: 1234},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, []string{"t1", "t2", "t3"})
	if err != nil {
		t.Fatal(err)
	}
	client.Sleep = func(time.Duration) {}
	cr := &Crawler{Client: client, Workers: 8}
	snap, err := cr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.FaultStats().Total(); got != 0 {
		t.Fatalf("zero-rate injector fired %d times", got)
	}
	if st := client.Stats(); st.Retries != 0 || st.BodyRetries != 0 {
		t.Fatalf("client retried against a healthy server: %+v", st)
	}
	if got := canonical(t, snap); !bytes.Equal(got, ref) {
		t.Fatal("zero-fault crawl diverges from reference")
	}
}

// TestChaosIdenticalSeedsIdenticalSchedules re-runs the same faulted
// crawl twice and checks the server-side fault log matches, proving the
// schedule is a function of (seed, method, path, call#) alone.
func TestChaosIdenticalSeedsIdenticalSchedules(t *testing.T) {
	w := testWorld(t)
	run := func() (apiserver.FaultStats, []byte) {
		srv := apiserver.New(w, apiserver.Options{
			Tokens:       []string{"t1", "t2"},
			TwitterLimit: 1 << 30,
			Faults: &apiserver.FaultConfig{
				Seed: 21,
				Default: apiserver.FaultProfile{
					ServerError: 0.05, Truncate: 0.03,
				},
			},
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client, err := NewClient(ts.URL, []string{"t1", "t2"})
		if err != nil {
			t.Fatal(err)
		}
		client.Sleep = func(time.Duration) {}
		client.MaxRetries = 10
		cr := &Crawler{Client: client, Workers: 1} // serial: identical request order
		snap, err := cr.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return srv.FaultStats(), canonical(t, snap)
	}
	stats1, snap1 := run()
	stats2, snap2 := run()
	if stats1 != stats2 {
		t.Fatalf("same seed, different fault schedules: %+v vs %+v", stats1, stats2)
	}
	if stats1.Total() == 0 {
		t.Fatal("no faults fired at 8% combined rate")
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatal("same seed produced different snapshots")
	}
}

// TestCheckpointRoundTrip covers the save/load primitives directly.
func TestCheckpointRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := LoadCheckpoint(context.Background(), st, "checkpoint/none"); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	cp := &Checkpoint{
		Seq:             3,
		Phase:           PhaseBFS,
		Round:           2,
		StartupFrontier: []string{"s1", "s2"},
		UserFrontier:    []string{"u9"},
		Snap: &Snapshot{
			Startups: map[string]*ecosystem.Startup{"s0": {ID: "s0", Name: "Zero"}},
		},
	}
	if err := SaveCheckpoint(context.Background(), st, "checkpoint/crawl", cp); err != nil {
		t.Fatal(err)
	}
	// A later checkpoint must shadow the earlier one.
	cp2 := &Checkpoint{Seq: 4, Phase: PhaseAugment, Round: 3, AugmentDone: []string{"s0"}, Snap: cp.Snap}
	if err := SaveCheckpoint(context.Background(), st, "checkpoint/crawl", cp2); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCheckpoint(context.Background(), st, "checkpoint/crawl")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Seq != 4 || got.Phase != PhaseAugment || got.Round != 3 {
		t.Fatalf("loaded the wrong checkpoint: %+v", got)
	}
	if len(got.AugmentDone) != 1 || got.AugmentDone[0] != "s0" {
		t.Fatalf("augment done lost: %v", got.AugmentDone)
	}
	if got.Snap.Startups["s0"].Name != "Zero" {
		t.Fatal("snapshot contents lost in round trip")
	}
	// All maps usable even where the JSON had none.
	if got.Snap.Users == nil || got.Snap.Twitter == nil {
		t.Fatal("nil maps after load")
	}
}
