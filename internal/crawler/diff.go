package crawler

import (
	"reflect"
	"sort"
)

// RoundDiff is the raw-entity difference between two crawl rounds,
// computed before any merging: which startups and users were added,
// removed, or changed (augment-profile changes count as a change of the
// startup they attach to). All lists are sorted.
//
// The diff is conservative on purpose: it compares the raw crawl
// records, so an entity may be flagged changed even when the fields the
// merged Company/Investor rows derive from are untouched. That is safe —
// the delta builder re-merges flagged entities and compares against the
// previous merged row before emitting an upsert — and the converse
// (raw-unchanged but merged-changed) cannot happen because the merge is
// a pure per-entity function of the raw records.
type RoundDiff struct {
	StartupsUpserted []string // added or changed
	StartupsRemoved  []string
	UsersUpserted    []string // added or changed
	UsersRemoved     []string
}

// DiffRounds computes the raw-entity diff turning the prev crawl round
// into cur.
func DiffRounds(prev, cur *Snapshot) *RoundDiff {
	rd := &RoundDiff{}
	rd.StartupsUpserted, rd.StartupsRemoved = diffMaps(prev.Startups, cur.Startups, func(id string) bool {
		return startupChanged(prev, cur, id)
	})
	rd.UsersUpserted, rd.UsersRemoved = diffMaps(prev.Users, cur.Users, func(id string) bool {
		return !reflect.DeepEqual(prev.Users[id], cur.Users[id])
	})
	return rd
}

func diffMaps[T any](prev, cur map[string]*T, changed func(id string) bool) (upserted, removed []string) {
	for id := range cur {
		if _, ok := prev[id]; !ok || changed(id) {
			upserted = append(upserted, id)
		}
	}
	for id := range prev {
		if _, ok := cur[id]; !ok {
			removed = append(removed, id)
		}
	}
	sort.Strings(upserted)
	sort.Strings(removed)
	return upserted, removed
}

// startupChanged reports whether the startup record or any of its
// augmentation profiles differ between the rounds.
func startupChanged(prev, cur *Snapshot, id string) bool {
	return !reflect.DeepEqual(prev.Startups[id], cur.Startups[id]) ||
		!reflect.DeepEqual(prev.CrunchBase[id], cur.CrunchBase[id]) ||
		!reflect.DeepEqual(prev.Facebook[id], cur.Facebook[id]) ||
		!reflect.DeepEqual(prev.Twitter[id], cur.Twitter[id])
}
