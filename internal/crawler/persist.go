package crawler

import (
	"context"
	"fmt"
	"sort"

	"crowdscope/internal/ecosystem"
	"crowdscope/internal/store"
)

// Store namespaces, one per crawled source, mirroring the paper's
// HDFS layout of JSON files per data source.
const (
	NSStartups   = "angellist/startups"
	NSUsers      = "angellist/users"
	NSCrunchBase = "crunchbase/profiles"
	NSFacebook   = "facebook/profiles"
	NSTwitter    = "twitter/profiles"
)

// StartupRecord is the persisted form of a crawled startup.
type StartupRecord struct {
	ecosystem.Startup
	// Snapshot tags the crawl round for longitudinal studies.
	Snapshot int `json:"snapshot"`
}

// UserRecord is the persisted form of a crawled user.
type UserRecord struct {
	ecosystem.User
	Snapshot int `json:"snapshot"`
}

// AugmentRecord attaches a source profile to its startup.
type AugmentRecord[T any] struct {
	StartupID string `json:"startup_id"`
	Profile   T      `json:"profile"`
	Snapshot  int    `json:"snapshot"`
}

// Persist writes the snapshot into the store under the standard
// namespaces, tagging every record with the snapshot number. Records are
// written in sorted ID order so persisted output is deterministic. The
// context bounds the durable writes: a canceled ctx stops between
// records, leaving the in-flight namespace uncommitted (segment commits
// are atomic, so the store never sees a torn snapshot).
func Persist(ctx context.Context, s *store.Store, snap *Snapshot, snapshotNum int) error {
	if err := persistMap(ctx, s, NSStartups, snap.Startups, func(id string, v *ecosystem.Startup) any {
		return StartupRecord{Startup: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	if err := persistMap(ctx, s, NSUsers, snap.Users, func(id string, v *ecosystem.User) any {
		return UserRecord{User: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	if err := persistMap(ctx, s, NSCrunchBase, snap.CrunchBase, func(id string, v *ecosystem.CrunchBaseProfile) any {
		return AugmentRecord[ecosystem.CrunchBaseProfile]{StartupID: id, Profile: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	if err := persistMap(ctx, s, NSFacebook, snap.Facebook, func(id string, v *ecosystem.FacebookProfile) any {
		return AugmentRecord[ecosystem.FacebookProfile]{StartupID: id, Profile: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	return persistMap(ctx, s, NSTwitter, snap.Twitter, func(id string, v *ecosystem.TwitterProfile) any {
		return AugmentRecord[ecosystem.TwitterProfile]{StartupID: id, Profile: *v, Snapshot: snapshotNum}
	})
}

func persistMap[T any](ctx context.Context, s *store.Store, ns string, m map[string]*T, wrap func(string, *T) any) error {
	if len(m) == 0 {
		return nil
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w, err := s.Writer(ns)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			w.Close()
			return fmt.Errorf("crawler: persist %s: %w", ns, err)
		}
		if err := w.Append(wrap(id, m[id])); err != nil {
			w.Close()
			return fmt.Errorf("crawler: persist %s: %w", ns, err)
		}
	}
	return w.Close()
}
