package crawler

import (
	"context"
	"fmt"
	"sort"

	"crowdscope/internal/ecosystem"
	"crowdscope/internal/store"
)

// Store namespaces, one per crawled source, mirroring the paper's
// HDFS layout of JSON files per data source.
const (
	NSStartups   = "angellist/startups"
	NSUsers      = "angellist/users"
	NSCrunchBase = "crunchbase/profiles"
	NSFacebook   = "facebook/profiles"
	NSTwitter    = "twitter/profiles"
)

// StartupRecord is the persisted form of a crawled startup.
type StartupRecord struct {
	ecosystem.Startup
	// Snapshot tags the crawl round for longitudinal studies.
	Snapshot int `json:"snapshot"`
}

// UserRecord is the persisted form of a crawled user.
type UserRecord struct {
	ecosystem.User
	Snapshot int `json:"snapshot"`
}

// AugmentRecord attaches a source profile to its startup.
type AugmentRecord[T any] struct {
	StartupID string `json:"startup_id"`
	Profile   T      `json:"profile"`
	Snapshot  int    `json:"snapshot"`
}

// Persist writes the snapshot into the store under the standard
// namespaces, tagging every record with the snapshot number. Records are
// written in sorted ID order so persisted output is deterministic. A
// namespace that already exists hash-sharded (a store prepared by
// PersistSharded or a sharded ingest) keeps its shard count: records
// route by store.ShardFor over the same keys the ingest path uses
// (startups and users by their own ID, augmentation profiles by the
// owning startup ID), so the crawl namespaces stay co-sharded and the
// shard-at-a-time freeze works unchanged. The context bounds the
// durable writes: a canceled ctx stops between records, leaving the
// in-flight namespace uncommitted (segment commits are atomic, so the
// store never sees a torn snapshot).
func Persist(ctx context.Context, s *store.Store, snap *Snapshot, snapshotNum int) error {
	return PersistSharded(ctx, s, snap, snapshotNum, 0)
}

// PersistSharded is Persist with an explicit shard count for namespaces
// that do not exist yet: new namespaces are created with `shards`
// shards (<=1 means unsharded), existing ones keep their committed
// count (the store enforces equal K on reopen). It is how a crawl
// bootstraps a store at paper scale, where every downstream stage wants
// the K-way layout.
func PersistSharded(ctx context.Context, s *store.Store, snap *Snapshot, snapshotNum, shards int) error {
	if err := persistMap(ctx, s, NSStartups, snap.Startups, shards, func(id string, v *ecosystem.Startup) any {
		return StartupRecord{Startup: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	if err := persistMap(ctx, s, NSUsers, snap.Users, shards, func(id string, v *ecosystem.User) any {
		return UserRecord{User: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	if err := persistMap(ctx, s, NSCrunchBase, snap.CrunchBase, shards, func(id string, v *ecosystem.CrunchBaseProfile) any {
		return AugmentRecord[ecosystem.CrunchBaseProfile]{StartupID: id, Profile: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	if err := persistMap(ctx, s, NSFacebook, snap.Facebook, shards, func(id string, v *ecosystem.FacebookProfile) any {
		return AugmentRecord[ecosystem.FacebookProfile]{StartupID: id, Profile: *v, Snapshot: snapshotNum}
	}); err != nil {
		return err
	}
	return persistMap(ctx, s, NSTwitter, snap.Twitter, shards, func(id string, v *ecosystem.TwitterProfile) any {
		return AugmentRecord[ecosystem.TwitterProfile]{StartupID: id, Profile: *v, Snapshot: snapshotNum}
	})
}

func persistMap[T any](ctx context.Context, s *store.Store, ns string, m map[string]*T, shards int, wrap func(string, *T) any) error {
	if len(m) == 0 {
		return nil
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// An existing namespace dictates its own layout; the caller's shard
	// count only shapes namespaces being created now.
	k := shards
	if existing, err := s.ShardCount(ns); err == nil {
		k = existing
	}
	if k > 1 {
		w, err := s.ShardedWriter(ns, k)
		if err != nil {
			return err
		}
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				w.Close()
				return fmt.Errorf("crawler: persist %s: %w", ns, err)
			}
			if err := w.Append(id, wrap(id, m[id])); err != nil {
				w.Close()
				return fmt.Errorf("crawler: persist %s: %w", ns, err)
			}
		}
		return w.Close()
	}
	w, err := s.Writer(ns)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			w.Close()
			return fmt.Errorf("crawler: persist %s: %w", ns, err)
		}
		if err := w.Append(wrap(id, m[id])); err != nil {
			w.Close()
			return fmt.Errorf("crawler: persist %s: %w", ns, err)
		}
	}
	return w.Close()
}
