package crawler

import (
	"context"
	"fmt"

	"crowdscope/internal/store"
)

// Scheduler drives the longitudinal collection the paper plans in Section
// 7: a daily task that re-crawls the currently-fundraising startups and
// appends time-tagged snapshots to the store.
//
// In simulation, "a day passes" means the caller advances the world
// (ecosystem.Evolve) and refreshes the API server between OnDay calls; the
// scheduler itself is time-free so tests and examples control the clock.
type Scheduler struct {
	Crawler *Crawler
	Store   *store.Store
	// SeedsOnly restricts the daily crawl to the raising listing and its
	// one-hop neighborhood (MaxRounds=2), which is what a daily
	// incremental pass does; full BFS remains available for rebuilds.
	SeedsOnly bool

	snapshots int
}

// Snapshots returns how many snapshots have been collected.
func (sc *Scheduler) Snapshots() int { return sc.snapshots }

// RunOnce performs one scheduled crawl and persists it with the next
// snapshot number. It returns the snapshot.
func (sc *Scheduler) RunOnce(ctx context.Context) (*Snapshot, error) {
	if sc.Crawler == nil || sc.Store == nil {
		return nil, fmt.Errorf("crawler: scheduler needs a crawler and a store")
	}
	cr := *sc.Crawler
	if sc.SeedsOnly {
		cr.MaxRounds = 2
	}
	snap, err := cr.Run(ctx)
	if err != nil {
		return nil, err
	}
	if err := Persist(ctx, sc.Store, snap, sc.snapshots); err != nil {
		return nil, err
	}
	sc.snapshots++
	return snap, nil
}
