package crawler

import (
	"slices"
	"testing"

	"crowdscope/internal/ecosystem"
)

func diffSnap() *Snapshot {
	return &Snapshot{
		Startups: map[string]*ecosystem.Startup{
			"s-keep":   {ID: "s-keep", Name: "Keep"},
			"s-edit":   {ID: "s-edit", Name: "Edit", Raising: true},
			"s-drop":   {ID: "s-drop", Name: "Drop"},
			"s-social": {ID: "s-social", Name: "Social", TwitterURL: "https://tw/social"},
		},
		Users: map[string]*ecosystem.User{
			"u-keep": {ID: "u-keep", Investments: []string{"s-keep"}},
			"u-edit": {ID: "u-edit", Investments: []string{"s-keep"}},
			"u-drop": {ID: "u-drop"},
		},
		Twitter: map[string]*ecosystem.TwitterProfile{
			"s-social": {Username: "social", FollowersCount: 10},
		},
	}
}

// TestDiffRounds pins the raw-round diff: adds, removes, record edits,
// and — the subtle case — augment-profile-only changes, which must flag
// the startup they attach to even though its own record is untouched.
func TestDiffRounds(t *testing.T) {
	prev := diffSnap()
	cur := diffSnap()

	cur.Startups["s-edit"].Raising = false
	delete(cur.Startups, "s-drop")
	cur.Startups["s-new"] = &ecosystem.Startup{ID: "s-new", Name: "New"}
	// Augment-only change: the startup record is identical, only the
	// Twitter profile moved.
	cur.Twitter["s-social"] = &ecosystem.TwitterProfile{Username: "social", FollowersCount: 11}

	cur.Users["u-edit"].Investments = []string{"s-keep", "s-new"}
	delete(cur.Users, "u-drop")
	cur.Users["u-new"] = &ecosystem.User{ID: "u-new"}

	rd := DiffRounds(prev, cur)
	if want := []string{"s-edit", "s-new", "s-social"}; !slices.Equal(rd.StartupsUpserted, want) {
		t.Fatalf("StartupsUpserted = %v, want %v", rd.StartupsUpserted, want)
	}
	if want := []string{"s-drop"}; !slices.Equal(rd.StartupsRemoved, want) {
		t.Fatalf("StartupsRemoved = %v, want %v", rd.StartupsRemoved, want)
	}
	if want := []string{"u-edit", "u-new"}; !slices.Equal(rd.UsersUpserted, want) {
		t.Fatalf("UsersUpserted = %v, want %v", rd.UsersUpserted, want)
	}
	if want := []string{"u-drop"}; !slices.Equal(rd.UsersRemoved, want) {
		t.Fatalf("UsersRemoved = %v, want %v", rd.UsersRemoved, want)
	}
}

// TestDiffRoundsIdentical: equal rounds diff to nothing, including when
// pointer identity differs (DeepEqual on values, not addresses).
func TestDiffRoundsIdentical(t *testing.T) {
	rd := DiffRounds(diffSnap(), diffSnap())
	if len(rd.StartupsUpserted)+len(rd.StartupsRemoved)+len(rd.UsersUpserted)+len(rd.UsersRemoved) != 0 {
		t.Fatalf("identical rounds produced a non-empty diff: %+v", rd)
	}
}
