package crawler

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"crowdscope/internal/apiserver"
	"crowdscope/internal/ecosystem"
	"crowdscope/internal/leakcheck"
	"crowdscope/internal/store"
)

var (
	worldOnce sync.Once
	world     *ecosystem.World
)

func testWorld(t *testing.T) *ecosystem.World {
	t.Helper()
	worldOnce.Do(func() {
		w, err := ecosystem.Generate(ecosystem.NewConfig(21, 0.001))
		if err != nil {
			panic(err)
		}
		world = w
	})
	return world
}

// harness spins up a simulated API server over the shared world.
func harness(t *testing.T, opts apiserver.Options) (*ecosystem.World, *apiserver.Server, *Client) {
	t.Helper()
	w := testWorld(t)
	if len(opts.Tokens) == 0 {
		opts.Tokens = []string{"t1", "t2", "t3"}
	}
	srv := apiserver.New(w, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, opts.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	client.Sleep = func(time.Duration) {} // tests never really sleep
	return w, srv, client
}

func TestNewClientRequiresTokens(t *testing.T) {
	if _, err := NewClient("http://x", nil); err == nil {
		t.Fatal("expected error without tokens")
	}
}

func TestFullCrawlCompleteness(t *testing.T) {
	w, _, client := harness(t, apiserver.Options{})
	cr := &Crawler{Client: client, Workers: 8}
	snap, err := cr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The follow-graph backbone guarantees total coverage.
	if snap.Stats.StartupsCrawled != len(w.Startups) {
		t.Errorf("crawled %d startups, world has %d", snap.Stats.StartupsCrawled, len(w.Startups))
	}
	if snap.Stats.UsersCrawled != len(w.Users) {
		t.Errorf("crawled %d users, world has %d", snap.Stats.UsersCrawled, len(w.Users))
	}
	// Every startup with a social link got its profile.
	var wantFB, wantTW int
	for _, s := range w.Startups {
		if s.FacebookURL != "" {
			wantFB++
		}
		if s.TwitterURL != "" {
			wantTW++
		}
	}
	if snap.Stats.FacebookProfiles != wantFB {
		t.Errorf("facebook profiles %d, want %d", snap.Stats.FacebookProfiles, wantFB)
	}
	if snap.Stats.TwitterProfiles != wantTW {
		t.Errorf("twitter profiles %d, want %d", snap.Stats.TwitterProfiles, wantTW)
	}
	// The BFS should need only a few rounds given the backbone (seeds ->
	// users -> startups), plus settling rounds.
	if snap.Stats.Rounds < 2 || snap.Stats.Rounds > 10 {
		t.Errorf("rounds = %d", snap.Stats.Rounds)
	}
	// Crawled content matches ground truth for a sample.
	for id, st := range snap.Startups {
		truth := w.StartupByID(id)
		if truth == nil || truth.Name != st.Name {
			t.Fatalf("startup %s diverges from ground truth", id)
		}
		break
	}
}

func TestCrawlCrunchBaseAugmentation(t *testing.T) {
	w, _, client := harness(t, apiserver.Options{})
	cr := &Crawler{Client: client, Workers: 8}
	snap, err := cr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Every successful company must be augmented unless its name search
	// was ambiguous (duplicated names are planted on purpose).
	missedSuccessful := 0
	for i, s := range w.Startups {
		if !w.Successful[i] {
			continue
		}
		if _, ok := snap.CrunchBase[s.ID]; !ok {
			missedSuccessful++
		}
	}
	total := snap.Stats.CBByLink + snap.Stats.CBBySearch
	if total == 0 {
		t.Fatal("no CrunchBase augmentations at all")
	}
	if snap.Stats.CBByLink == 0 || snap.Stats.CBBySearch == 0 {
		t.Errorf("both augmentation paths should trigger: link=%d search=%d",
			snap.Stats.CBByLink, snap.Stats.CBBySearch)
	}
	// Ambiguity losses should stay small.
	if missedSuccessful > snap.Stats.CBAmbiguous+total/10 {
		t.Errorf("missed %d successful companies (ambiguous=%d)", missedSuccessful, snap.Stats.CBAmbiguous)
	}
}

func TestCrawlSurvivesFailureInjection(t *testing.T) {
	w, _, client := harness(t, apiserver.Options{FailureRate: 0.2, Seed: 7})
	cr := &Crawler{Client: client, Workers: 4}
	snap, err := cr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.StartupsCrawled != len(w.Startups) {
		t.Errorf("crawled %d startups under failures, want %d", snap.Stats.StartupsCrawled, len(w.Startups))
	}
	if snap.Stats.Client.Retries == 0 {
		t.Error("expected retries under 20% failure rate")
	}
}

func TestCrawlRotatesTokensUnderRateLimit(t *testing.T) {
	now := time.Unix(0, 0)
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	w, _, client := harness(t, apiserver.Options{
		Tokens:        []string{"t1", "t2", "t3"},
		TwitterLimit:  10,
		TwitterWindow: time.Minute,
		Clock:         clock,
	})
	// Sleeping advances the fake clock, simulating the wait for a window.
	client.Sleep = func(d time.Duration) {
		nowMu.Lock()
		now = now.Add(d)
		nowMu.Unlock()
	}
	cr := &Crawler{Client: client, Workers: 2}
	snap, err := cr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wantTW int
	for _, s := range w.Startups {
		if s.TwitterURL != "" {
			wantTW++
		}
	}
	if snap.Stats.TwitterProfiles != wantTW {
		t.Errorf("twitter profiles %d, want %d despite rate limits", snap.Stats.TwitterProfiles, wantTW)
	}
	if wantTW > 30 && snap.Stats.Client.RateLimitHits == 0 {
		t.Error("expected rate-limit hits with tight windows")
	}
}

func TestCrawlContextCancellation(t *testing.T) {
	// Early cancellation is where worker leaks hide: the pool's workers
	// must all join even when ctx dies before the first fetch.
	leakcheck.Check(t)
	_, _, client := harness(t, apiserver.Options{})
	cr := &Crawler{Client: client, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cr.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestCrawlMaxRounds(t *testing.T) {
	w, _, client := harness(t, apiserver.Options{})
	cr := &Crawler{Client: client, Workers: 4, MaxRounds: 1, SkipAugmentation: true}
	snap, err := cr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One round collects only the raising seeds.
	if snap.Stats.StartupsCrawled >= len(w.Startups) {
		t.Errorf("partial crawl got everything: %d", snap.Stats.StartupsCrawled)
	}
	if snap.Stats.StartupsCrawled != snap.Stats.SeedStartups {
		t.Errorf("round-1 crawl = %d, want %d seeds", snap.Stats.StartupsCrawled, snap.Stats.SeedStartups)
	}
}

func TestPersistAndScheduler(t *testing.T) {
	w, srv, client := harness(t, apiserver.Options{})
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := &Scheduler{
		Crawler: &Crawler{Client: client, Workers: 8},
		Store:   st,
	}
	snap, err := sched.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Snapshots() != 1 {
		t.Fatalf("snapshots = %d", sched.Snapshots())
	}
	// Verify persisted counts.
	startups, err := store.ReadAll[StartupRecord](st, NSStartups)
	if err != nil {
		t.Fatal(err)
	}
	if len(startups) != len(snap.Startups) {
		t.Fatalf("persisted %d startups, snapshot has %d", len(startups), len(snap.Startups))
	}
	for _, r := range startups {
		if r.Snapshot != 0 {
			t.Fatalf("snapshot tag = %d", r.Snapshot)
		}
	}
	users, err := store.ReadAll[UserRecord](st, NSUsers)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != len(snap.Users) {
		t.Fatalf("persisted %d users", len(users))
	}

	// Second snapshot after the world evolves.
	for d := 0; d < 5; d++ {
		w.Evolve()
	}
	srv.Reload()
	if _, err := sched.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	startups2, _ := store.ReadAll[StartupRecord](st, NSStartups)
	if len(startups2) <= len(startups) {
		t.Fatalf("second snapshot did not append: %d -> %d", len(startups), len(startups2))
	}
	sawTag1 := false
	for _, r := range startups2 {
		if r.Snapshot == 1 {
			sawTag1 = true
			break
		}
	}
	if !sawTag1 {
		t.Fatal("no records tagged with snapshot 1")
	}
}

func TestSchedulerValidation(t *testing.T) {
	sc := &Scheduler{}
	if _, err := sc.RunOnce(context.Background()); err == nil {
		t.Fatal("expected error for unconfigured scheduler")
	}
}

func TestClientNotFound(t *testing.T) {
	_, _, client := harness(t, apiserver.Options{})
	ctx := context.Background()
	if _, err := client.Startup(ctx, "does-not-exist"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	if _, err := client.User(ctx, "does-not-exist"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]string{"a", "b", "a", "c", "b"})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("dedupe = %v", got)
	}
	if got := dedupe(nil); len(got) != 0 {
		t.Fatalf("dedupe(nil) = %v", got)
	}
}

func TestExchangeFacebookToken(t *testing.T) {
	_, _, client := harness(t, apiserver.Options{
		Tokens:        []string{"t1"},
		FBAppID:       "app-x",
		FBAppSecret:   "sec-x",
		FBShortTokens: []string{"stub"},
	})
	ctx := context.Background()
	before := len(client.Tokens)
	long, err := client.ExchangeFacebookToken(ctx, "app-x", "sec-x", "stub")
	if err != nil {
		t.Fatal(err)
	}
	if long == "" || len(client.Tokens) != before+1 {
		t.Fatalf("token not appended: %q (%d tokens)", long, len(client.Tokens))
	}
	// The new token works for data fetches.
	solo, err := NewClient(client.BaseURL, []string{long})
	if err != nil {
		t.Fatal(err)
	}
	solo.Sleep = func(time.Duration) {}
	if _, err := solo.RaisingStartups(ctx); err != nil {
		t.Fatalf("long token rejected: %v", err)
	}
	// Bad exchanges fail.
	if _, err := client.ExchangeFacebookToken(ctx, "app-x", "wrong", "stub"); err == nil {
		t.Error("bad secret accepted")
	}
	if _, err := client.ExchangeFacebookToken(ctx, "app-x", "sec-x", "nope"); err == nil {
		t.Error("bad short token accepted")
	}
}
