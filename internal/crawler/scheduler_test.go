package crawler

import (
	"context"
	"strings"
	"testing"

	"crowdscope/internal/apiserver"
	"crowdscope/internal/store"
)

// TestSchedulerPersistFailurePropagates: when Persist cannot write (the
// startups namespace already has an open writer), RunOnce must surface
// the error and must NOT advance the snapshot counter, so the retry
// reuses the same snapshot number.
func TestSchedulerPersistFailurePropagates(t *testing.T) {
	_, _, client := harness(t, apiserver.Options{})
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := &Scheduler{
		Crawler: &Crawler{Client: client, Workers: 8},
		Store:   st,
	}

	w, err := st.Writer(NSStartups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.RunOnce(context.Background()); err == nil {
		t.Fatal("RunOnce succeeded with the startups namespace locked")
	} else if !strings.Contains(err.Error(), "already has an open writer") {
		t.Fatalf("unexpected error: %v", err)
	}
	if sched.Snapshots() != 0 {
		t.Fatalf("failed run advanced the counter to %d", sched.Snapshots())
	}

	// Release the writer; the retry persists as snapshot 0.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := sched.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Snapshots() != 1 {
		t.Fatalf("snapshots = %d after successful retry", sched.Snapshots())
	}
	records, err := store.ReadAll[StartupRecord](st, NSStartups)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(snap.Startups) {
		t.Fatalf("persisted %d records, snapshot has %d", len(records), len(snap.Startups))
	}
	for _, r := range records {
		if r.Snapshot != 0 {
			t.Fatalf("retry tagged a record with snapshot %d, want 0", r.Snapshot)
		}
	}
}

// TestSchedulerSnapshotNumberingMonotonic runs three passes and checks
// the persisted tags count 0, 1, 2 in order.
func TestSchedulerSnapshotNumberingMonotonic(t *testing.T) {
	_, _, client := harness(t, apiserver.Options{})
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := &Scheduler{
		Crawler: &Crawler{Client: client, Workers: 8},
		Store:   st,
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := sched.RunOnce(context.Background()); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if sched.Snapshots() != i+1 {
			t.Fatalf("after run %d: snapshots = %d", i, sched.Snapshots())
		}
	}
	records, err := store.ReadAll[UserRecord](st, NSUsers)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range records {
		if r.Snapshot < 0 || r.Snapshot >= runs {
			t.Fatalf("record tagged with out-of-range snapshot %d", r.Snapshot)
		}
		seen[r.Snapshot] = true
	}
	for i := 0; i < runs; i++ {
		if !seen[i] {
			t.Fatalf("no records tagged with snapshot %d", i)
		}
	}
}

// TestSchedulerSeedsOnlyCopySemantics: RunOnce works on a copy of the
// configured crawler, so a SeedsOnly pass must not mutate the caller's
// Crawler, and its crawl must stop at the two-round neighborhood.
func TestSchedulerSeedsOnlyCopySemantics(t *testing.T) {
	w, _, client := harness(t, apiserver.Options{})
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := &Crawler{Client: client, Workers: 4, SkipAugmentation: true}
	sched := &Scheduler{Crawler: base, Store: st, SeedsOnly: true}
	snap, err := sched.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if base.MaxRounds != 0 {
		t.Fatalf("RunOnce mutated the caller's crawler: MaxRounds = %d", base.MaxRounds)
	}
	if snap.Stats.StartupsCrawled >= len(w.Startups) {
		t.Fatalf("seeds-only pass crawled the whole world (%d startups)", snap.Stats.StartupsCrawled)
	}
	if snap.Stats.StartupsCrawled < snap.Stats.SeedStartups {
		t.Fatalf("seeds-only pass lost seeds: %d < %d", snap.Stats.StartupsCrawled, snap.Stats.SeedStartups)
	}
}
