package crawler

import (
	"context"
	"fmt"

	"crowdscope/internal/ecosystem"
	"crowdscope/internal/store"
)

// Crawl phases recorded in checkpoints. PhaseDone marks a finished
// crawl; PhasePersisted additionally records (for callers like the
// Pipeline) that the snapshot was durably persisted, so a resumed run
// must not write it again. Both are terminal for Run.
const (
	PhaseBFS       = "bfs"
	PhaseAugment   = "augment"
	PhaseDone      = "done"
	PhasePersisted = "persisted"
)

// DefaultCheckpointNS is where crawl checkpoints live unless the
// CheckpointConfig names another namespace.
const DefaultCheckpointNS = "checkpoint/crawl"

// CheckpointConfig enables durable crawl progress. After every BFS round
// and every augmentation batch the crawler appends a Checkpoint record to
// the namespace; a crawl started with Resume picks up from the latest
// one, so a crashed or canceled run re-fetches at most one round or one
// batch of work.
type CheckpointConfig struct {
	// Store receives the checkpoint records. Required.
	Store *store.Store
	// Namespace for the records. Default DefaultCheckpointNS. Give each
	// logical crawl (e.g. each longitudinal snapshot) its own namespace.
	Namespace string
	// AugmentBatch is how many startups are augmented between
	// checkpoints. Default 64.
	AugmentBatch int
	// Resume loads the latest checkpoint before starting and skips all
	// completed work. Without a checkpoint on disk it is a no-op.
	Resume bool
	// Fence, when nonzero, tags every checkpoint record this crawl
	// writes with the writer's fencing token (a fleet worker's lease
	// token). LoadCheckpoint prefers the highest fence, so records a
	// stale owner sneaks in after losing its lease can never shadow the
	// current owner's progress.
	Fence int64
	// Guard, when non-nil, runs before every checkpoint write; an error
	// aborts the crawl. Fleet workers verify their lease is still held
	// here, so a fenced-out worker stops at its next persist instead of
	// crawling on uselessly.
	Guard func(ctx context.Context) error
}

func (cfg *CheckpointConfig) namespace() string {
	if cfg.Namespace == "" {
		return DefaultCheckpointNS
	}
	return cfg.Namespace
}

func (cfg *CheckpointConfig) batch() int {
	if cfg.AugmentBatch <= 0 {
		return 64
	}
	return cfg.AugmentBatch
}

// Checkpoint is one durable record of crawl progress: the phase, the
// work remaining in it, and everything collected so far. Records are
// append-only; the latest one wins.
type Checkpoint struct {
	// Seq numbers checkpoints within one crawl, for observability.
	Seq int `json:"seq"`
	// Phase is PhaseBFS, PhaseAugment or PhaseDone.
	Phase string `json:"phase"`
	// Round is the number of completed BFS rounds.
	Round int `json:"round"`
	// StartupFrontier and UserFrontier hold the next BFS round's work
	// (PhaseBFS only), sorted for stable records.
	StartupFrontier []string `json:"startup_frontier,omitempty"`
	UserFrontier    []string `json:"user_frontier,omitempty"`
	// AugmentDone lists startup IDs already augmented (PhaseAugment).
	AugmentDone []string `json:"augment_done,omitempty"`
	// Fence is the writer's fencing token (0 outside fleet crawls).
	// Among committed records, higher fences always win: a reclaimed
	// partition's new owner shadows anything its predecessor wrote.
	Fence int64 `json:"fence,omitempty"`
	// Snap is the partial snapshot collected so far.
	Snap *Snapshot `json:"snapshot"`
}

// SaveCheckpoint appends cp to the namespace and commits it durably. A
// canceled ctx skips the write entirely; checkpoints are all-or-nothing.
func SaveCheckpoint(ctx context.Context, s *store.Store, ns string, cp *Checkpoint) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("crawler: checkpoint: %w", err)
	}
	w, err := s.Writer(ns)
	if err != nil {
		return fmt.Errorf("crawler: checkpoint: %w", err)
	}
	if err := w.Append(cp); err != nil {
		w.Close()
		return fmt.Errorf("crawler: checkpoint: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("crawler: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint returns the winning checkpoint in the namespace, or
// ok=false when none has ever been committed. The winner is the record
// with the highest fencing token, ties broken by append order — for
// single-owner crawls (all fences zero) that is simply the latest
// record, and for fleet partitions it means a stale ex-owner's late
// append can never shadow the reclaiming owner's progress. The context
// bounds the checkpoint scan.
func LoadCheckpoint(ctx context.Context, s *store.Store, ns string) (*Checkpoint, bool, error) {
	known := false
	for _, n := range s.Namespaces() {
		if n == ns {
			known = true
			break
		}
	}
	if !known {
		return nil, false, nil
	}
	var last *Checkpoint
	err := store.ScanAsContext(ctx, s, ns, func(cp Checkpoint) error {
		if last != nil && cp.Fence < last.Fence {
			return nil
		}
		c := cp
		last = &c
		return nil
	})
	if err != nil {
		return nil, false, fmt.Errorf("crawler: load checkpoint: %w", err)
	}
	if last == nil {
		return nil, false, nil
	}
	if last.Snap == nil {
		last.Snap = &Snapshot{}
	}
	ensureMaps(last.Snap)
	return last, true, nil
}

// ensureMaps fills nil maps after JSON round-trips of empty snapshots.
func ensureMaps(snap *Snapshot) {
	if snap.Startups == nil {
		snap.Startups = map[string]*ecosystem.Startup{}
	}
	if snap.Users == nil {
		snap.Users = map[string]*ecosystem.User{}
	}
	if snap.CrunchBase == nil {
		snap.CrunchBase = map[string]*ecosystem.CrunchBaseProfile{}
	}
	if snap.Facebook == nil {
		snap.Facebook = map[string]*ecosystem.FacebookProfile{}
	}
	if snap.Twitter == nil {
		snap.Twitter = map[string]*ecosystem.TwitterProfile{}
	}
}
