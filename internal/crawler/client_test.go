package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowdscope/internal/apiserver"
)

// TestBackoffRespectsContextCancellation is the regression test for the
// bug where a canceled crawl slept out a full backoff before noticing:
// with an hour-long backoff pending, cancellation must surface almost
// immediately.
func TestBackoffRespectsContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"always failing"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, []string{"tok"})
	if err != nil {
		t.Fatal(err)
	}
	client.BaseBackoff = time.Hour // the old code would sleep this out

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := client.Startup(ctx, "s1")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and start backing off
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v, the backoff was slept out", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client still sleeping 10s after cancellation")
	}
}

// TestRetryAfterSleepRespectsContextCancellation covers the other sleep
// site: the every-token-exhausted Retry-After wait.
func TestRetryAfterSleepRespectsContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		http.Error(w, `{"error":"rate limited"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, []string{"only-token"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Startup(ctx, "s1")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client still sleeping out Retry-After after cancellation")
	}
}

// TestCanceledContextFailsFast checks no request is even attempted on a
// dead context.
func TestCanceledContextFailsFast(t *testing.T) {
	_, _, client := harness(t, apiserver.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Startup(ctx, "s1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := client.RaisingStartups(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTruncatedBodyRefetched runs the client against a server that
// truncates half the raising-listing responses and checks the pagination
// still returns the complete listing via re-fetches.
func TestTruncatedBodyRefetched(t *testing.T) {
	w, _, clean := harness(t, apiserver.Options{})
	want, err := clean.RaisingStartups(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	srv := apiserver.New(w, apiserver.Options{
		Tokens: []string{"t1"},
		Faults: &apiserver.FaultConfig{
			// Seed 8 truncates the very first listing page (draw 0.02), so
			// the re-fetch path is exercised even for a one-page listing.
			Seed:    8,
			Default: apiserver.FaultProfile{Truncate: 0.5},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, []string{"t1"})
	if err != nil {
		t.Fatal(err)
	}
	client.Sleep = func(time.Duration) {}
	client.MaxRetries = 12

	got, err := client.RaisingStartups(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("listing under truncation = %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("id %d diverges: %s vs %s", i, got[i], want[i])
		}
	}
	if st := client.Stats(); st.BodyRetries == 0 {
		t.Error("expected body re-fetches at 50% truncation rate")
	}
	if fs := srv.FaultStats(); fs.Truncates == 0 {
		t.Error("server reports no truncations")
	}
}

// TestRetryAfterFormats covers both wire forms of Retry-After (RFC 9110
// delta-seconds and HTTP-date) against an injected clock: the date form
// must resolve to the exact wait between the client's clock and the
// header's instant, and unusable values (past dates, garbage) fall back
// to the default window.
func TestRetryAfterFormats(t *testing.T) {
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"delta seconds", "7", 7 * time.Second},
		{"http date", base.Add(5 * time.Second).Format(http.TimeFormat), 5 * time.Second},
		{"past http date", base.Add(-time.Minute).Format(http.TimeFormat), 2 * time.Second},
		{"garbage", "soon", 2 * time.Second},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1) == 1 {
					w.Header().Set("Retry-After", tc.header)
					http.Error(w, `{"error":"rate limited"}`, http.StatusTooManyRequests)
					return
				}
				fmt.Fprint(w, `{"id":"s1"}`)
			}))
			defer ts.Close()
			client, err := NewClient(ts.URL, []string{"only-token"})
			if err != nil {
				t.Fatal(err)
			}
			var slept []time.Duration
			client.Sleep = func(d time.Duration) { slept = append(slept, d) }
			client.Clock = func() time.Time { return base }

			st, err := client.Startup(context.Background(), "s1")
			if err != nil {
				t.Fatal(err)
			}
			if st.ID != "s1" {
				t.Fatalf("startup id = %q", st.ID)
			}
			if len(slept) != 1 || slept[0] != tc.want {
				t.Fatalf("slept %v, want exactly [%v]", slept, tc.want)
			}
			if cs := client.Stats(); cs.RateLimitHits != 1 || cs.TokenSleeps != 1 {
				t.Fatalf("stats = %+v, want one rate-limit hit and one token sleep", cs)
			}
		})
	}
}

// TestBackoffBudgetCapsTotalSleep: a hostile (or skewed) server that
// keeps demanding hour-long waits must not stall a call forever — the
// cumulative sleep within one call is capped by MaxSleepPerCall and the
// call fails with the typed ErrBackoffBudget.
func TestBackoffBudgetCapsTotalSleep(t *testing.T) {
	t.Run("rate limit waits", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, `{"error":"rate limited"}`, http.StatusTooManyRequests)
		}))
		defer ts.Close()
		client, err := NewClient(ts.URL, []string{"only-token"})
		if err != nil {
			t.Fatal(err)
		}
		client.MaxSleepPerCall = 5 * time.Second
		var total time.Duration
		client.Sleep = func(d time.Duration) { total += d }

		_, err = client.Startup(context.Background(), "s1")
		if !errors.Is(err, ErrBackoffBudget) {
			t.Fatalf("err = %v, want ErrBackoffBudget", err)
		}
		if total > 5*time.Second {
			t.Fatalf("slept %v total, budget was 5s", total)
		}
	})
	t.Run("retry backoff", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"always failing"}`, http.StatusInternalServerError)
		}))
		defer ts.Close()
		client, err := NewClient(ts.URL, []string{"tok"})
		if err != nil {
			t.Fatal(err)
		}
		client.MaxRetries = 50
		client.BaseBackoff = time.Second
		client.MaxSleepPerCall = 3 * time.Second
		var total time.Duration
		client.Sleep = func(d time.Duration) { total += d }

		_, err = client.Startup(context.Background(), "s1")
		if !errors.Is(err, ErrBackoffBudget) {
			t.Fatalf("err = %v, want ErrBackoffBudget", err)
		}
		if total > 3*time.Second {
			t.Fatalf("slept %v total, budget was 3s", total)
		}
	})
}

// TestParallelRecordsAllErrors: after the first failure no new work is
// dispatched, but every in-flight failure lands in the joined error.
func TestParallelRecordsAllErrors(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	var barrier sync.WaitGroup
	barrier.Add(len(items))
	err := parallel(context.Background(), len(items), items, func(id string) error {
		barrier.Done()
		barrier.Wait() // all four failures are in flight together
		return fmt.Errorf("boom-%s", id)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	for _, id := range items {
		if !strings.Contains(err.Error(), "boom-"+id) {
			t.Fatalf("joined error lost failure of %q: %v", id, err)
		}
	}
	var asJoin interface{ Unwrap() []error }
	if !errors.As(err, &asJoin) {
		t.Fatalf("error is not a joined error: %T", err)
	}
	if got := len(asJoin.Unwrap()); got != len(items) {
		t.Fatalf("joined %d errors, want %d", got, len(items))
	}
}
