package crawler

import (
	"context"
	"fmt"

	"crowdscope/internal/ecosystem"
	"crowdscope/internal/store"
)

// IngestGenerated promotes a streamed generated world — the gen/*
// namespaces ecosystem.GenerateTo commits — into the standard crawl
// namespaces, tagging every record with the snapshot number. It is the
// collection stage at scales where driving the HTTP crawler is
// infeasible (the paper-scale pipeline); the record schema it writes is
// exactly what Persist writes after a real crawl, so every downstream
// stage is oblivious to which path produced the data.
//
// Each crawl namespace inherits its source namespace's shard count and
// key (startups and users shard by their own ID, augmentation profiles
// by the owning startup ID), so the crawl namespaces stay co-sharded
// with each other and a shard-at-a-time freeze never needs records from
// two shards at once. The transform streams record by record: peak
// memory is O(1) in world size.
//
// Returns the total number of records ingested. The context bounds the
// durable writes; segment commits are atomic so cancellation never
// leaves a torn namespace.
func IngestGenerated(ctx context.Context, s *store.Store, snapshotNum int) (int64, error) {
	var total int64
	n, err := ingestNS(ctx, s, ecosystem.NSGenStartups, NSStartups,
		func(r ecosystem.Startup) (string, any) {
			return r.ID, StartupRecord{Startup: r, Snapshot: snapshotNum}
		})
	total += n
	if err != nil {
		return total, err
	}
	n, err = ingestNS(ctx, s, ecosystem.NSGenUsers, NSUsers,
		func(r ecosystem.User) (string, any) {
			return r.ID, UserRecord{User: r, Snapshot: snapshotNum}
		})
	total += n
	if err != nil {
		return total, err
	}
	n, err = ingestNS(ctx, s, ecosystem.NSGenCrunchBase, NSCrunchBase,
		func(r ecosystem.GenAugment[ecosystem.CrunchBaseProfile]) (string, any) {
			return r.StartupID, AugmentRecord[ecosystem.CrunchBaseProfile]{StartupID: r.StartupID, Profile: r.Profile, Snapshot: snapshotNum}
		})
	total += n
	if err != nil {
		return total, err
	}
	n, err = ingestNS(ctx, s, ecosystem.NSGenFacebook, NSFacebook,
		func(r ecosystem.GenAugment[ecosystem.FacebookProfile]) (string, any) {
			return r.StartupID, AugmentRecord[ecosystem.FacebookProfile]{StartupID: r.StartupID, Profile: r.Profile, Snapshot: snapshotNum}
		})
	total += n
	if err != nil {
		return total, err
	}
	n, err = ingestNS(ctx, s, ecosystem.NSGenTwitter, NSTwitter,
		func(r ecosystem.GenAugment[ecosystem.TwitterProfile]) (string, any) {
			return r.StartupID, AugmentRecord[ecosystem.TwitterProfile]{StartupID: r.StartupID, Profile: r.Profile, Snapshot: snapshotNum}
		})
	total += n
	return total, err
}

// ingestNS streams one generated namespace into its crawl counterpart,
// preserving the shard count and per-shard record order.
func ingestNS[In any](ctx context.Context, s *store.Store, from, to string, wrap func(In) (string, any)) (int64, error) {
	k, err := s.ShardCount(from)
	if err != nil {
		return 0, fmt.Errorf("crawler: ingest %s: %w", from, err)
	}
	w, err := s.ShardedWriter(to, k)
	if err != nil {
		return 0, fmt.Errorf("crawler: ingest %s: %w", to, err)
	}
	var n int64
	for shard := 0; shard < k; shard++ {
		err := store.ScanShardAsContext(ctx, s, from, shard, func(r In) error {
			key, rec := wrap(r)
			if err := w.Append(key, rec); err != nil {
				return err
			}
			n++
			return nil
		})
		if err != nil {
			w.Close()
			return n, fmt.Errorf("crawler: ingest %s: %w", from, err)
		}
	}
	if err := w.Close(); err != nil {
		return n, fmt.Errorf("crawler: ingest %s: %w", to, err)
	}
	return n, nil
}
