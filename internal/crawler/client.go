// Package crawler implements the paper's data-collection pipeline: a
// high-throughput parallel crawler that discovers the AngelList graph by
// breadth-first search from the currently-raising listing, then augments
// every discovered startup with CrunchBase, Facebook and Twitter data.
//
// The crawler only learns about the world through the HTTP APIs — it
// never touches generator state — and it copes with the same operational
// obstacles the paper describes: per-token Twitter rate windows (defeated
// by rotating tokens, as the paper distributes its crawl across machines
// with different tokens), transient server errors (exponential backoff
// with jitter), truncated or malformed response bodies (re-fetched), and
// paginated listings.
package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crowdscope/internal/apiserver"
	"crowdscope/internal/ecosystem"
)

// ErrNotFound marks 404 responses; callers treat these as absent data,
// not failures.
var ErrNotFound = errors.New("crawler: not found")

// ErrBackoffBudget marks a call abandoned because its cumulative retry
// and rate-limit sleeping hit MaxSleepPerCall. A fleet worker that sees
// it fails the current partition attempt instead of sleeping past its
// lease expiry (where a hostile Retry-After would otherwise park it
// until another worker fences it out).
var ErrBackoffBudget = errors.New("crawler: backoff budget exhausted")

// Client is a rate-limit-aware, retrying HTTP client for the simulated
// services. It is safe for concurrent use.
type Client struct {
	// BaseURL of the API server, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Tokens to rotate across. At least one is required.
	Tokens []string
	// HTTP client; defaults to http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds retry attempts for transient failures (5xx,
	// network errors, malformed bodies). Default 5.
	MaxRetries int
	// BaseBackoff is the initial retry delay, doubled per attempt with
	// jitter. Default 10ms.
	BaseBackoff time.Duration
	// Sleep, when non-nil, replaces the real wait between retries and
	// when every token is rate limited; tests inject fakes. The default
	// (nil) sleeps on a timer that respects context cancellation.
	Sleep func(time.Duration)
	// Clock supplies the current time for HTTP-date Retry-After math;
	// nil means time.Now. Tests inject fakes so date headers resolve to
	// deterministic waits.
	Clock apiserver.Clock
	// MaxSleepPerCall caps cumulative sleeping (backoff plus rate-limit
	// waits) within one call. Individual waits are clamped to the
	// remaining budget; a call that would sleep with nothing left fails
	// with ErrBackoffBudget instead. 0 disables the cap — a lone crawler
	// legitimately sleeps out whole Twitter rate windows, which is the
	// paper's documented crawl reality. Fleet workers set it to their
	// lease TTL so a hostile or skewed Retry-After header cannot park
	// them past expiry (crowdfleet wires this up).
	MaxSleepPerCall time.Duration

	tokenCursor atomic.Uint64

	statsMu sync.Mutex
	stats   ClientStats

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// ClientStats counts the client's HTTP activity.
type ClientStats struct {
	Requests      int64 // HTTP requests issued
	Retries       int64 // retried transient failures
	BodyRetries   int64 // re-fetches after truncated/malformed 200 bodies
	RateLimitHits int64 // 429 responses observed
	TokenSleeps   int64 // waits because every token was exhausted
}

// NewClient builds a client with defaults filled in.
func NewClient(baseURL string, tokens []string) (*Client, error) {
	if len(tokens) == 0 {
		return nil, errors.New("crawler: at least one access token required")
	}
	return &Client{
		BaseURL:     baseURL,
		Tokens:      tokens,
		HTTP:        http.DefaultClient,
		MaxRetries:  5,
		BaseBackoff: 10 * time.Millisecond,
		jitter:      rand.New(rand.NewSource(1)),
	}, nil
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

func (c *Client) bump(f func(*ClientStats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

// nextToken rotates through the token list.
func (c *Client) nextToken() string {
	i := c.tokenCursor.Add(1)
	return c.Tokens[int(i)%len(c.Tokens)]
}

func (c *Client) backoff(attempt int) time.Duration {
	d := c.BaseBackoff << attempt
	c.jitterMu.Lock()
	j := time.Duration(c.jitter.Int63n(int64(d)/2 + 1))
	c.jitterMu.Unlock()
	return d + j
}

// sleep waits for d or until ctx is canceled, whichever comes first. A
// custom Sleep fake runs to completion (fakes advance virtual clocks),
// but cancellation is still honored before and after it.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// now returns the injected clock's time, defaulting to the wall clock.
func (c *Client) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// retryAfterDelay interprets a Retry-After header value as either
// delta-seconds or an HTTP-date (RFC 9110 allows both forms; real APIs
// send both). ok is false when the value is absent, unparseable,
// non-positive, or a date already in the past.
func (c *Client) retryAfterDelay(ra string) (time.Duration, bool) {
	if ra == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second, true
		}
		return 0, false
	}
	if when, err := http.ParseTime(ra); err == nil {
		if d := when.Sub(c.now()); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// getJSON fetches path (with query) into out, handling auth, retries and
// token rotation. A 429 rotates to the next token immediately; when all
// tokens are exhausted it sleeps out the window's Retry-After (either
// wire form). Truncated or malformed 200 bodies are re-fetched like
// transient failures. All waits abort promptly on context cancellation,
// and their sum is capped by MaxSleepPerCall: individual waits are
// clamped to the remaining budget, and once it is gone the call fails
// with ErrBackoffBudget.
func (c *Client) getJSON(ctx context.Context, path string, query url.Values, out any) error {
	attempt := 0
	rotations := 0
	var slept time.Duration
	budgetedSleep := func(d time.Duration) error {
		budget := c.MaxSleepPerCall
		if budget > 0 {
			remaining := budget - slept
			if remaining <= 0 {
				return fmt.Errorf("%w (cap %v)", ErrBackoffBudget, budget)
			}
			if d > remaining {
				d = remaining
			}
		}
		slept += d
		return c.sleep(ctx, d)
	}
	retryTransient := func(cause error) error {
		if attempt >= c.MaxRetries {
			return cause
		}
		c.bump(func(s *ClientStats) { s.Retries++ })
		if err := budgetedSleep(c.backoff(attempt)); err != nil {
			return fmt.Errorf("crawler: %s: %w", path, err)
		}
		attempt++
		return nil
	}
	for {
		token := c.nextToken()
		u := c.BaseURL + path
		if len(query) > 0 {
			u += "?" + query.Encode()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return fmt.Errorf("crawler: build request: %w", err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		c.bump(func(s *ClientStats) { s.Requests++ })
		httpc := c.HTTP
		if httpc == nil {
			httpc = http.DefaultClient
		}
		resp, err := httpc.Do(req)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("crawler: %s: %w", path, ctxErr)
			}
			if err := retryTransient(fmt.Errorf("crawler: %s: %w", path, err)); err != nil {
				return err
			}
			continue
		}
		body, readErr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			cause := readErr
			if cause == nil {
				if cause = json.Unmarshal(body, out); cause == nil {
					return nil
				}
			}
			// A 200 with an unreadable or undecodable body is a truncated
			// transfer; re-fetch the page like any transient failure.
			c.bump(func(s *ClientStats) { s.BodyRetries++ })
			if err := retryTransient(fmt.Errorf("crawler: bad body for %s: %w", path, cause)); err != nil {
				return err
			}
			continue
		case resp.StatusCode == http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrNotFound, path)
		case resp.StatusCode == http.StatusTooManyRequests:
			c.bump(func(s *ClientStats) { s.RateLimitHits++ })
			rotations++
			if rotations < len(c.Tokens) {
				continue // try the next token right away
			}
			// Every token exhausted: wait out the window.
			retry := 2 * time.Second
			if d, ok := c.retryAfterDelay(resp.Header.Get("Retry-After")); ok {
				retry = d
			}
			c.bump(func(s *ClientStats) { s.TokenSleeps++ })
			if err := budgetedSleep(retry); err != nil {
				return fmt.Errorf("crawler: %s: %w", path, err)
			}
			rotations = 0
			continue
		case resp.StatusCode >= 500:
			if err := retryTransient(fmt.Errorf("crawler: %s: server error %d after %d retries", path, resp.StatusCode, attempt)); err != nil {
				return err
			}
			continue
		default:
			return fmt.Errorf("crawler: %s: unexpected status %d", path, resp.StatusCode)
		}
	}
}

// RaisingStartups pages through the currently-raising listing, the seed
// set of the BFS.
func (c *Client) RaisingStartups(ctx context.Context) ([]string, error) {
	var all []string
	page := 1
	for {
		var resp apiserver.RaisingResponse
		q := url.Values{"page": {strconv.Itoa(page)}}
		if err := c.getJSON(ctx, "/angellist/startups/raising", q, &resp); err != nil {
			return nil, err
		}
		all = append(all, resp.Startups...)
		if page >= resp.LastPage {
			return all, nil
		}
		page++
	}
}

// Startup fetches one AngelList startup profile.
func (c *Client) Startup(ctx context.Context, id string) (*ecosystem.Startup, error) {
	var s ecosystem.Startup
	if err := c.getJSON(ctx, "/angellist/startups/"+id, nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Followers pages through the users following a startup.
func (c *Client) Followers(ctx context.Context, id string) ([]string, error) {
	var all []string
	page := 1
	for {
		var resp apiserver.FollowersResponse
		q := url.Values{"page": {strconv.Itoa(page)}}
		if err := c.getJSON(ctx, "/angellist/startups/"+id+"/followers", q, &resp); err != nil {
			return nil, err
		}
		all = append(all, resp.Followers...)
		if page >= resp.LastPage {
			return all, nil
		}
		page++
	}
}

// User fetches one AngelList user profile.
func (c *Client) User(ctx context.Context, id string) (*ecosystem.User, error) {
	var u ecosystem.User
	if err := c.getJSON(ctx, "/angellist/users/"+id, nil, &u); err != nil {
		return nil, err
	}
	return &u, nil
}

// CBOrganization fetches a CrunchBase profile by its URL.
func (c *Client) CBOrganization(ctx context.Context, cbURL string) (*ecosystem.CrunchBaseProfile, error) {
	var p ecosystem.CrunchBaseProfile
	if err := c.getJSON(ctx, "/crunchbase/organization", url.Values{"url": {cbURL}}, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// CBSearch searches CrunchBase by company name.
func (c *Client) CBSearch(ctx context.Context, name string) ([]*ecosystem.CrunchBaseProfile, error) {
	var resp apiserver.CBSearchResponse
	if err := c.getJSON(ctx, "/crunchbase/search", url.Values{"name": {name}}, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// FacebookPage fetches a Facebook page profile by URL via the Graph API.
func (c *Client) FacebookPage(ctx context.Context, fbURL string) (*ecosystem.FacebookProfile, error) {
	var p ecosystem.FacebookProfile
	if err := c.getJSON(ctx, "/facebook/graph", url.Values{"url": {fbURL}}, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// ExchangeFacebookToken swaps a short-lived token plus app credentials
// for a long-lived access token (the Graph API dance the paper performs
// before crawling Facebook) and appends it to the client's rotation.
func (c *Client) ExchangeFacebookToken(ctx context.Context, appID, appSecret, shortToken string) (string, error) {
	q := url.Values{
		"grant_type":        {"fb_exchange_token"},
		"app_id":            {appID},
		"app_secret":        {appSecret},
		"fb_exchange_token": {shortToken},
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/facebook/oauth/access_token?"+q.Encode(), nil)
	if err != nil {
		return "", fmt.Errorf("crawler: token exchange: %w", err)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return "", fmt.Errorf("crawler: token exchange: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("crawler: token exchange failed with status %d", resp.StatusCode)
	}
	var tok apiserver.FBTokenResponse
	if err := json.NewDecoder(resp.Body).Decode(&tok); err != nil {
		return "", fmt.Errorf("crawler: decode token exchange: %w", err)
	}
	if tok.AccessToken == "" {
		return "", errors.New("crawler: empty long-lived token")
	}
	c.Tokens = append(c.Tokens, tok.AccessToken)
	return tok.AccessToken, nil
}

// TwitterUser fetches a Twitter profile by screen name.
func (c *Client) TwitterUser(ctx context.Context, screenName string) (*ecosystem.TwitterProfile, error) {
	var p ecosystem.TwitterProfile
	if err := c.getJSON(ctx, "/twitter/users/show", url.Values{"screen_name": {screenName}}, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
