package crawler

import (
	"context"
	"errors"
	"strings"
	"sync"

	"crowdscope/internal/ecosystem"
)

// Snapshot holds everything one crawl collected, keyed exactly like the
// paper's datasets: AngelList startups and users, plus per-source
// augmentation profiles.
type Snapshot struct {
	Startups   map[string]*ecosystem.Startup
	Users      map[string]*ecosystem.User
	CrunchBase map[string]*ecosystem.CrunchBaseProfile // by startup ID
	Facebook   map[string]*ecosystem.FacebookProfile   // by startup ID
	Twitter    map[string]*ecosystem.TwitterProfile    // by startup ID
	Stats      Stats
}

// Stats summarizes one crawl.
type Stats struct {
	Rounds           int // BFS levels until the frontier emptied
	SeedStartups     int // size of the raising listing
	StartupsCrawled  int
	UsersCrawled     int
	CBByLink         int // CrunchBase found via profile URL
	CBBySearch       int // CrunchBase found via unique name search
	CBAmbiguous      int // skipped: name search was not unique
	CBMissing        int // no CrunchBase data at all
	FacebookProfiles int
	TwitterProfiles  int
	Client           ClientStats
}

// Crawler runs the two-phase collection: BFS over AngelList, then
// augmentation from CrunchBase, Facebook and Twitter.
type Crawler struct {
	Client *Client
	// Workers bounds parallel fetches per phase. Default 8.
	Workers int
	// MaxRounds caps BFS depth (0 = unlimited), for partial crawls.
	MaxRounds int
	// SkipAugmentation collects only the AngelList graph.
	SkipAugmentation bool
}

// Run executes a full crawl. It is deterministic in the served world up to
// map iteration order of the result (callers sort).
func (cr *Crawler) Run(ctx context.Context) (*Snapshot, error) {
	if cr.Client == nil {
		return nil, errors.New("crawler: nil client")
	}
	workers := cr.Workers
	if workers <= 0 {
		workers = 8
	}
	snap := &Snapshot{
		Startups:   map[string]*ecosystem.Startup{},
		Users:      map[string]*ecosystem.User{},
		CrunchBase: map[string]*ecosystem.CrunchBaseProfile{},
		Facebook:   map[string]*ecosystem.FacebookProfile{},
		Twitter:    map[string]*ecosystem.TwitterProfile{},
	}

	// Phase 1: BFS over the AngelList graph.
	seeds, err := cr.Client.RaisingStartups()
	if err != nil {
		return nil, err
	}
	snap.Stats.SeedStartups = len(seeds)

	var mu sync.Mutex // guards snap maps and the next-frontier sets
	startupFrontier := dedupe(seeds)
	var userFrontier []string

	for len(startupFrontier) > 0 || len(userFrontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		snap.Stats.Rounds++
		if cr.MaxRounds > 0 && snap.Stats.Rounds > cr.MaxRounds {
			break
		}
		var nextStartups, nextUsers []string

		// Fetch every startup in the frontier plus its follower list; the
		// followers become user-frontier candidates.
		err := parallel(ctx, workers, startupFrontier, func(id string) error {
			mu.Lock()
			_, seen := snap.Startups[id]
			mu.Unlock()
			if seen {
				return nil
			}
			st, err := cr.Client.Startup(id)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					return nil
				}
				return err
			}
			followers, err := cr.Client.Followers(id)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			mu.Lock()
			snap.Startups[id] = st
			for _, uid := range followers {
				if _, ok := snap.Users[uid]; !ok {
					nextUsers = append(nextUsers, uid)
				}
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}

		// Fetch every user in the frontier; what they follow becomes the
		// next frontier on both sides.
		err = parallel(ctx, workers, userFrontier, func(id string) error {
			mu.Lock()
			_, seen := snap.Users[id]
			mu.Unlock()
			if seen {
				return nil
			}
			u, err := cr.Client.User(id)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					return nil
				}
				return err
			}
			mu.Lock()
			snap.Users[id] = u
			for _, sid := range u.FollowsStartups {
				if _, ok := snap.Startups[sid]; !ok {
					nextStartups = append(nextStartups, sid)
				}
			}
			for _, sid := range u.Investments {
				if _, ok := snap.Startups[sid]; !ok {
					nextStartups = append(nextStartups, sid)
				}
			}
			for _, uid := range u.FollowsUsers {
				if _, ok := snap.Users[uid]; !ok {
					nextUsers = append(nextUsers, uid)
				}
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}

		startupFrontier = dedupe(nextStartups)
		userFrontier = dedupe(nextUsers)
	}
	snap.Stats.StartupsCrawled = len(snap.Startups)
	snap.Stats.UsersCrawled = len(snap.Users)

	if !cr.SkipAugmentation {
		if err := cr.augment(ctx, workers, snap, &mu); err != nil {
			return nil, err
		}
	}
	snap.Stats.Client = cr.Client.Stats()
	return snap, nil
}

// augment performs the one-time CrunchBase/Facebook/Twitter augmentation
// the paper describes in Section 3.
func (cr *Crawler) augment(ctx context.Context, workers int, snap *Snapshot, mu *sync.Mutex) error {
	ids := make([]string, 0, len(snap.Startups))
	for id := range snap.Startups {
		ids = append(ids, id)
	}
	return parallel(ctx, workers, ids, func(id string) error {
		st := snap.Startups[id]

		// CrunchBase: prefer the profile link; otherwise search by name
		// and accept only a unique match.
		var cb *ecosystem.CrunchBaseProfile
		viaLink := false
		if st.CrunchBaseURL != "" {
			p, err := cr.Client.CBOrganization(st.CrunchBaseURL)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			cb = p
			viaLink = cb != nil
		}
		ambiguous := false
		if cb == nil {
			results, err := cr.Client.CBSearch(st.Name)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			switch len(results) {
			case 1:
				cb = results[0]
			case 0:
			default:
				ambiguous = true
			}
		}

		var fb *ecosystem.FacebookProfile
		if st.FacebookURL != "" {
			p, err := cr.Client.FacebookPage(st.FacebookURL)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			fb = p
		}

		var tw *ecosystem.TwitterProfile
		if st.TwitterURL != "" {
			// Extract the username from the URL: the string after the
			// last "/" (exactly the paper's method).
			username := st.TwitterURL[strings.LastIndex(st.TwitterURL, "/")+1:]
			p, err := cr.Client.TwitterUser(username)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			tw = p
		}

		mu.Lock()
		defer mu.Unlock()
		switch {
		case cb != nil && viaLink:
			snap.CrunchBase[id] = cb
			snap.Stats.CBByLink++
		case cb != nil:
			snap.CrunchBase[id] = cb
			snap.Stats.CBBySearch++
		case ambiguous:
			snap.Stats.CBAmbiguous++
		default:
			snap.Stats.CBMissing++
		}
		if fb != nil {
			snap.Facebook[id] = fb
			snap.Stats.FacebookProfiles++
		}
		if tw != nil {
			snap.Twitter[id] = tw
			snap.Stats.TwitterProfiles++
		}
		return nil
	})
}

// parallel runs f over items with bounded workers, stopping at the first
// error or context cancellation.
func parallel(ctx context.Context, workers int, items []string, f func(string) error) error {
	if len(items) == 0 {
		return nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if err != nil || next >= len(items) {
					mu.Unlock()
					return
				}
				item := items[next]
				next++
				mu.Unlock()
				if ctx.Err() != nil {
					mu.Lock()
					if err == nil {
						err = ctx.Err()
					}
					mu.Unlock()
					return
				}
				if e := f(item); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}

func dedupe(ids []string) []string {
	seen := make(map[string]struct{}, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
