package crawler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"crowdscope/internal/ecosystem"
)

// Snapshot holds everything one crawl collected, keyed exactly like the
// paper's datasets: AngelList startups and users, plus per-source
// augmentation profiles.
type Snapshot struct {
	Startups   map[string]*ecosystem.Startup
	Users      map[string]*ecosystem.User
	CrunchBase map[string]*ecosystem.CrunchBaseProfile // by startup ID
	Facebook   map[string]*ecosystem.FacebookProfile   // by startup ID
	Twitter    map[string]*ecosystem.TwitterProfile    // by startup ID
	Stats      Stats
}

// Stats summarizes one crawl.
type Stats struct {
	Rounds           int // BFS levels until the frontier emptied
	SeedStartups     int // size of the raising listing
	StartupsCrawled  int
	UsersCrawled     int
	CBByLink         int // CrunchBase found via profile URL
	CBBySearch       int // CrunchBase found via unique name search
	CBAmbiguous      int // skipped: name search was not unique
	CBMissing        int // no CrunchBase data at all
	FacebookProfiles int
	TwitterProfiles  int
	Resumed          bool // this crawl continued from a checkpoint
	Checkpoints      int  // checkpoints written by this process
	Client           ClientStats
}

// Crawler runs the two-phase collection: BFS over AngelList, then
// augmentation from CrunchBase, Facebook and Twitter.
type Crawler struct {
	Client *Client
	// Workers bounds parallel fetches per phase. Default 8.
	Workers int
	// MaxRounds caps BFS depth (0 = unlimited), for partial crawls.
	MaxRounds int
	// SkipAugmentation collects only the AngelList graph.
	SkipAugmentation bool
	// Seeds, when non-empty, replaces the raising listing as the BFS
	// seed set (worker mode): a fleet coordinator fetches the listing
	// once, partitions it, and hands each worker its slice. The crawl is
	// otherwise identical — the union of worker crawls over a partition
	// of the listing collects exactly what one crawl of the whole
	// listing does, because the fetched data is a pure function of the
	// served world.
	Seeds []string
	// Checkpoint, when non-nil, persists progress after every BFS round
	// and augmentation batch so an interrupted crawl can resume. The
	// collected data is unchanged by interruption: a resumed crawl
	// produces the same snapshot contents as an uninterrupted one.
	Checkpoint *CheckpointConfig
}

// Run executes a full crawl. It is deterministic in the served world up to
// map iteration order of the result (callers sort).
func (cr *Crawler) Run(ctx context.Context) (*Snapshot, error) {
	if cr.Client == nil {
		return nil, errors.New("crawler: nil client")
	}
	workers := cr.Workers
	if workers <= 0 {
		workers = 8
	}
	snap := &Snapshot{
		Startups:   map[string]*ecosystem.Startup{},
		Users:      map[string]*ecosystem.User{},
		CrunchBase: map[string]*ecosystem.CrunchBaseProfile{},
		Facebook:   map[string]*ecosystem.FacebookProfile{},
		Twitter:    map[string]*ecosystem.TwitterProfile{},
	}

	var startupFrontier, userFrontier []string
	var augmentDone []string
	phase := PhaseBFS
	seeded := false
	cpSeq := 0

	if cr.Checkpoint != nil && cr.Checkpoint.Resume {
		cp, ok, err := LoadCheckpoint(ctx, cr.Checkpoint.Store, cr.Checkpoint.namespace())
		if err != nil {
			return nil, err
		}
		if ok {
			snap = cp.Snap
			snap.Stats.Resumed = true
			phase = cp.Phase
			startupFrontier = cp.StartupFrontier
			userFrontier = cp.UserFrontier
			augmentDone = cp.AugmentDone
			cpSeq = cp.Seq + 1
			seeded = true
			if phase != PhaseBFS && phase != PhaseAugment {
				// Terminal checkpoint: the crawl already finished.
				snap.Stats.Client = cr.Client.Stats()
				return snap, nil
			}
		}
	}

	save := func(cp Checkpoint) error {
		if cr.Checkpoint == nil {
			return nil
		}
		if cr.Checkpoint.Guard != nil {
			// Fleet workers verify their lease here; a fenced-out worker
			// aborts before it can write a stale checkpoint.
			if err := cr.Checkpoint.Guard(ctx); err != nil {
				return fmt.Errorf("crawler: checkpoint guard: %w", err)
			}
		}
		cp.Seq = cpSeq
		cp.Fence = cr.Checkpoint.Fence
		cp.Snap = snap
		if err := SaveCheckpoint(ctx, cr.Checkpoint.Store, cr.Checkpoint.namespace(), &cp); err != nil {
			return err
		}
		cpSeq++
		snap.Stats.Checkpoints++
		return nil
	}

	var mu sync.Mutex // guards snap maps and the next-frontier sets

	if phase == PhaseBFS {
		if !seeded {
			// Phase 1 start: seed the BFS from the raising listing, or
			// from the caller-supplied partition in worker mode.
			seeds := cr.Seeds
			if len(seeds) == 0 {
				var err error
				seeds, err = cr.Client.RaisingStartups(ctx)
				if err != nil {
					return nil, err
				}
			}
			snap.Stats.SeedStartups = len(seeds)
			startupFrontier = dedupe(seeds)
		}
		if err := cr.runBFS(ctx, workers, snap, &mu, startupFrontier, userFrontier, save); err != nil {
			return nil, err
		}
		phase = PhaseAugment
		if !cr.SkipAugmentation {
			// Mark the phase transition so a crash between phases resumes
			// directly into augmentation.
			if err := save(Checkpoint{Phase: PhaseAugment, Round: snap.Stats.Rounds}); err != nil {
				return nil, err
			}
		}
	}

	snap.Stats.StartupsCrawled = len(snap.Startups)
	snap.Stats.UsersCrawled = len(snap.Users)

	if phase == PhaseAugment && !cr.SkipAugmentation {
		if err := cr.augment(ctx, workers, snap, &mu, augmentDone, save); err != nil {
			return nil, err
		}
	}
	if err := save(Checkpoint{Phase: PhaseDone, Round: snap.Stats.Rounds}); err != nil {
		return nil, err
	}
	snap.Stats.Client = cr.Client.Stats()
	return snap, nil
}

// runBFS crawls the AngelList follow graph breadth-first until both
// frontiers empty, checkpointing after each completed round.
func (cr *Crawler) runBFS(ctx context.Context, workers int, snap *Snapshot, mu *sync.Mutex,
	startupFrontier, userFrontier []string, save func(Checkpoint) error) error {
	for len(startupFrontier) > 0 || len(userFrontier) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		snap.Stats.Rounds++
		if cr.MaxRounds > 0 && snap.Stats.Rounds > cr.MaxRounds {
			snap.Stats.Rounds--
			break
		}
		var nextStartups, nextUsers []string

		// Fetch every startup in the frontier plus its follower list; the
		// followers become user-frontier candidates.
		err := parallel(ctx, workers, startupFrontier, func(id string) error {
			mu.Lock()
			_, seen := snap.Startups[id]
			mu.Unlock()
			if seen {
				return nil
			}
			st, err := cr.Client.Startup(ctx, id)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					return nil
				}
				return err
			}
			followers, err := cr.Client.Followers(ctx, id)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			mu.Lock()
			snap.Startups[id] = st
			for _, uid := range followers {
				if _, ok := snap.Users[uid]; !ok {
					nextUsers = append(nextUsers, uid)
				}
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}

		// Fetch every user in the frontier; what they follow becomes the
		// next frontier on both sides.
		err = parallel(ctx, workers, userFrontier, func(id string) error {
			mu.Lock()
			_, seen := snap.Users[id]
			mu.Unlock()
			if seen {
				return nil
			}
			u, err := cr.Client.User(ctx, id)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					return nil
				}
				return err
			}
			mu.Lock()
			snap.Users[id] = u
			for _, sid := range u.FollowsStartups {
				if _, ok := snap.Startups[sid]; !ok {
					nextStartups = append(nextStartups, sid)
				}
			}
			for _, sid := range u.Investments {
				if _, ok := snap.Startups[sid]; !ok {
					nextStartups = append(nextStartups, sid)
				}
			}
			for _, uid := range u.FollowsUsers {
				if _, ok := snap.Users[uid]; !ok {
					nextUsers = append(nextUsers, uid)
				}
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}

		startupFrontier = dedupe(nextStartups)
		userFrontier = dedupe(nextUsers)
		// The frontier *sets* are deterministic but their discovery order
		// is not; sort so checkpoint records are stable.
		sort.Strings(startupFrontier)
		sort.Strings(userFrontier)
		if err := save(Checkpoint{
			Phase:           PhaseBFS,
			Round:           snap.Stats.Rounds,
			StartupFrontier: startupFrontier,
			UserFrontier:    userFrontier,
		}); err != nil {
			return err
		}
	}
	return nil
}

// augment performs the one-time CrunchBase/Facebook/Twitter augmentation
// the paper describes in Section 3, in sorted batches with a checkpoint
// after each so interrupted runs re-fetch at most one batch.
func (cr *Crawler) augment(ctx context.Context, workers int, snap *Snapshot, mu *sync.Mutex,
	done []string, save func(Checkpoint) error) error {
	doneSet := make(map[string]struct{}, len(done))
	for _, id := range done {
		doneSet[id] = struct{}{}
	}
	ids := make([]string, 0, len(snap.Startups))
	for id := range snap.Startups {
		if _, ok := doneSet[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	batch := len(ids)
	if cr.Checkpoint != nil {
		batch = cr.Checkpoint.batch()
	}
	for lo := 0; lo < len(ids); lo += batch {
		hi := lo + batch
		if hi > len(ids) {
			hi = len(ids)
		}
		if err := parallel(ctx, workers, ids[lo:hi], func(id string) error {
			return cr.augmentOne(ctx, snap, mu, id)
		}); err != nil {
			return err
		}
		done = append(done, ids[lo:hi]...)
		if err := save(Checkpoint{
			Phase:       PhaseAugment,
			Round:       snap.Stats.Rounds,
			AugmentDone: done,
		}); err != nil {
			return err
		}
	}
	return nil
}

// augmentOne attaches the external profiles of a single startup.
func (cr *Crawler) augmentOne(ctx context.Context, snap *Snapshot, mu *sync.Mutex, id string) error {
	st := snap.Startups[id]

	// CrunchBase: prefer the profile link; otherwise search by name
	// and accept only a unique match.
	var cb *ecosystem.CrunchBaseProfile
	viaLink := false
	if st.CrunchBaseURL != "" {
		p, err := cr.Client.CBOrganization(ctx, st.CrunchBaseURL)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		cb = p
		viaLink = cb != nil
	}
	ambiguous := false
	if cb == nil {
		results, err := cr.Client.CBSearch(ctx, st.Name)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		switch len(results) {
		case 1:
			cb = results[0]
		case 0:
		default:
			ambiguous = true
		}
	}

	var fb *ecosystem.FacebookProfile
	if st.FacebookURL != "" {
		p, err := cr.Client.FacebookPage(ctx, st.FacebookURL)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		fb = p
	}

	var tw *ecosystem.TwitterProfile
	if st.TwitterURL != "" {
		// Extract the username from the URL: the string after the
		// last "/" (exactly the paper's method).
		username := st.TwitterURL[strings.LastIndex(st.TwitterURL, "/")+1:]
		p, err := cr.Client.TwitterUser(ctx, username)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		tw = p
	}

	mu.Lock()
	defer mu.Unlock()
	switch {
	case cb != nil && viaLink:
		snap.CrunchBase[id] = cb
		snap.Stats.CBByLink++
	case cb != nil:
		snap.CrunchBase[id] = cb
		snap.Stats.CBBySearch++
	case ambiguous:
		snap.Stats.CBAmbiguous++
	default:
		snap.Stats.CBMissing++
	}
	if fb != nil {
		snap.Facebook[id] = fb
		snap.Stats.FacebookProfiles++
	}
	if tw != nil {
		snap.Twitter[id] = tw
		snap.Stats.TwitterProfiles++
	}
	return nil
}

// parallel runs f over items with bounded workers. After the first error
// no new items are dispatched, but every failure from in-flight workers
// is recorded; the result joins them all (errors.Join) so callers can
// inspect the complete failure set.
func parallel(ctx context.Context, workers int, items []string, f func(string) error) error {
	if len(items) == 0 {
		return nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if len(errs) > 0 || next >= len(items) {
					mu.Unlock()
					return
				}
				item := items[next]
				next++
				mu.Unlock()
				if err := ctx.Err(); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				if err := f(item); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

func dedupe(ids []string) []string {
	seen := make(map[string]struct{}, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
