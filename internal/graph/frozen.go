package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Frozen is an immutable directed graph backed directly by flat arrays —
// the in-memory shape of a loaded snapshot. Construction is O(1) in graph
// size when the CSR arrays already exist (nothing is copied or rebuilt);
// the label→index map is built lazily on the first Index call. A Frozen
// is safe for concurrent use.
type Frozen struct {
	labels []string
	out    *CSR
	in     *CSR

	indexOnce sync.Once
	index     map[string]int32
}

// NewFrozen wraps node labels and out/in CSR adjacency into a read-only
// graph. The arrays are adopted, not copied; callers must not mutate them
// afterwards. Offsets and labels must agree on the node count, and the
// two CSRs must carry the same number of edges.
func NewFrozen(labels []string, out, in *CSR) (*Frozen, error) {
	if out.NumNodes() != len(labels) || in.NumNodes() != len(labels) {
		return nil, fmt.Errorf("graph: frozen node counts disagree (labels=%d out=%d in=%d)",
			len(labels), out.NumNodes(), in.NumNodes())
	}
	if len(out.Targets) != len(in.Targets) {
		return nil, fmt.Errorf("graph: frozen edge counts disagree (out=%d in=%d)",
			len(out.Targets), len(in.Targets))
	}
	return &Frozen{labels: labels, out: out, in: in}, nil
}

// Freeze snapshots a Directed graph into its immutable flat-array form.
// Adjacency order is preserved exactly, so every View algorithm produces
// bit-identical results on the frozen copy.
func Freeze(g *Directed) *Frozen {
	labels := make([]string, g.NumNodes())
	copy(labels, g.labels)
	f, err := NewFrozen(labels, buildCSR(g.out, g.edges), buildCSR(g.in, g.edges))
	if err != nil {
		// Unreachable: Directed maintains the mirror invariant.
		panic(err)
	}
	return f
}

// NumNodes returns the node count.
func (f *Frozen) NumNodes() int { return len(f.labels) }

// NumEdges returns the edge count.
func (f *Frozen) NumEdges() int { return len(f.out.Targets) }

// Label returns the label of node idx.
func (f *Frozen) Label(idx int32) string { return f.labels[idx] }

// Index returns the dense index for a label, if present. The lookup map
// is built once, on first use.
func (f *Frozen) Index(label string) (int32, bool) {
	f.indexOnce.Do(func() {
		f.index = make(map[string]int32, len(f.labels))
		for i, l := range f.labels {
			f.index[l] = int32(i)
		}
	})
	idx, ok := f.index[label]
	return idx, ok
}

// Out returns the out-neighbors of node idx. The slice aliases the frozen
// arrays and must not be modified.
func (f *Frozen) Out(idx int32) []int32 { return f.out.Row(idx) }

// In returns the in-neighbors of node idx. The slice aliases the frozen
// arrays and must not be modified.
func (f *Frozen) In(idx int32) []int32 { return f.in.Row(idx) }

// OutDegree returns the out-degree of node idx.
func (f *Frozen) OutDegree(idx int32) int { return f.out.Degree(idx) }

// InDegree returns the in-degree of node idx.
func (f *Frozen) InDegree(idx int32) int { return f.in.Degree(idx) }

// OutCSR returns the out-adjacency arrays themselves — no rebuild.
func (f *Frozen) OutCSR() *CSR { return f.out }

// InCSR returns the in-adjacency arrays themselves — no rebuild.
func (f *Frozen) InCSR() *CSR { return f.in }

// Labels returns a copy of all node labels in index order.
func (f *Frozen) Labels() []string {
	out := make([]string, len(f.labels))
	copy(out, f.labels)
	return out
}

// FrozenBipartite is the immutable two-mode counterpart of Frozen: left
// and right label tables plus fwd (left→right) and rev (right→left) CSR
// adjacency, exactly as loaded from a snapshot. Safe for concurrent use.
type FrozenBipartite struct {
	leftLabels  []string
	rightLabels []string
	fwd         *CSR
	rev         *CSR
	// sortedRows records whether every fwd row is ascending, deciding
	// whether HasEdge may binary-search.
	sortedRows bool

	leftOnce  sync.Once
	leftIdx   map[string]int32
	rightOnce sync.Once
	rightIdx  map[string]int32
}

// NewFrozenBipartite wraps label tables and CSR adjacency into a
// read-only bipartite graph. Arrays are adopted, not copied.
func NewFrozenBipartite(leftLabels, rightLabels []string, fwd, rev *CSR) (*FrozenBipartite, error) {
	if fwd.NumNodes() != len(leftLabels) {
		return nil, fmt.Errorf("graph: frozen bipartite left counts disagree (labels=%d fwd=%d)",
			len(leftLabels), fwd.NumNodes())
	}
	if rev.NumNodes() != len(rightLabels) {
		return nil, fmt.Errorf("graph: frozen bipartite right counts disagree (labels=%d rev=%d)",
			len(rightLabels), rev.NumNodes())
	}
	if len(fwd.Targets) != len(rev.Targets) {
		return nil, fmt.Errorf("graph: frozen bipartite edge counts disagree (fwd=%d rev=%d)",
			len(fwd.Targets), len(rev.Targets))
	}
	fb := &FrozenBipartite{leftLabels: leftLabels, rightLabels: rightLabels, fwd: fwd, rev: rev}
	fb.sortedRows = csrRowsSorted(fwd)
	return fb, nil
}

// FreezeBipartite snapshots a Bipartite into its immutable flat-array
// form, preserving adjacency order exactly.
func FreezeBipartite(b *Bipartite) *FrozenBipartite {
	left := make([]string, b.NumLeft())
	copy(left, b.leftLabels)
	right := make([]string, b.NumRight())
	copy(right, b.rightLabels)
	fb, err := NewFrozenBipartite(left, right, buildCSR(b.fwd, b.edges), buildCSR(b.rev, b.edges))
	if err != nil {
		// Unreachable: Bipartite maintains the mirror invariant.
		panic(err)
	}
	return fb
}

// NumLeft returns the number of left (investor) nodes.
func (f *FrozenBipartite) NumLeft() int { return len(f.leftLabels) }

// NumRight returns the number of right (company) nodes.
func (f *FrozenBipartite) NumRight() int { return len(f.rightLabels) }

// NumEdges returns the number of edges.
func (f *FrozenBipartite) NumEdges() int { return len(f.fwd.Targets) }

// LeftLabel returns the label of left node idx.
func (f *FrozenBipartite) LeftLabel(idx int32) string { return f.leftLabels[idx] }

// RightLabel returns the label of right node idx.
func (f *FrozenBipartite) RightLabel(idx int32) string { return f.rightLabels[idx] }

// LeftIndex resolves a left label; the lookup map is built on first use.
func (f *FrozenBipartite) LeftIndex(label string) (int32, bool) {
	f.leftOnce.Do(func() {
		f.leftIdx = make(map[string]int32, len(f.leftLabels))
		for i, l := range f.leftLabels {
			f.leftIdx[l] = int32(i)
		}
	})
	idx, ok := f.leftIdx[label]
	return idx, ok
}

// RightIndex resolves a right label; the lookup map is built on first use.
func (f *FrozenBipartite) RightIndex(label string) (int32, bool) {
	f.rightOnce.Do(func() {
		f.rightIdx = make(map[string]int32, len(f.rightLabels))
		for i, l := range f.rightLabels {
			f.rightIdx[l] = int32(i)
		}
	})
	idx, ok := f.rightIdx[label]
	return idx, ok
}

// Fwd returns the right-neighbors of left node idx. The slice aliases the
// frozen arrays and must not be modified.
func (f *FrozenBipartite) Fwd(idx int32) []int32 { return f.fwd.Row(idx) }

// Rev returns the left-neighbors of right node idx. The slice aliases the
// frozen arrays and must not be modified.
func (f *FrozenBipartite) Rev(idx int32) []int32 { return f.rev.Row(idx) }

// OutDegree returns the out-degree of a left node.
func (f *FrozenBipartite) OutDegree(idx int32) int { return f.fwd.Degree(idx) }

// InDegree returns the in-degree of a right node.
func (f *FrozenBipartite) InDegree(idx int32) int { return f.rev.Degree(idx) }

// FwdCSR returns the left→right adjacency arrays themselves.
func (f *FrozenBipartite) FwdCSR() *CSR { return f.fwd }

// RevCSR returns the right→left adjacency arrays themselves.
func (f *FrozenBipartite) RevCSR() *CSR { return f.rev }

// HasEdge reports whether the labeled edge exists. Sorted rows (the
// normal case — snapshots are written after SortAdjacency) are binary-
// searched; unsorted rows fall back to a linear scan.
func (f *FrozenBipartite) HasEdge(left, right string) bool {
	u, ok := f.LeftIndex(left)
	if !ok {
		return false
	}
	r, ok := f.RightIndex(right)
	if !ok {
		return false
	}
	row := f.fwd.Row(u)
	if f.sortedRows {
		i := sort.Search(len(row), func(i int) bool { return row[i] >= r })
		return i < len(row) && row[i] == r
	}
	for _, v := range row {
		if v == r {
			return true
		}
	}
	return false
}

// csrRowsSorted reports whether every row of c is ascending.
func csrRowsSorted(c *CSR) bool {
	for u := 0; u < c.NumNodes(); u++ {
		row := c.Row(int32(u))
		for i := 1; i < len(row); i++ {
			if row[i-1] > row[i] {
				return false
			}
		}
	}
	return true
}
