package graph

import (
	"fmt"
	"sort"
)

// Directed is a simple directed graph (no parallel edges, self-loops
// allowed but tracked) over string-labeled nodes. The zero value is not
// usable; construct with NewDirected.
type Directed struct {
	labels []string
	index  map[string]int32
	out    [][]int32
	in     [][]int32
	edges  int
	// dedup guards against parallel edges without requiring sorted
	// adjacency during construction.
	seen map[[2]int32]struct{}
	// Lazily built flattened adjacency views (see csr.go); dropped on
	// every mutation.
	csrOut, csrIn *CSR
}

// NewDirected returns an empty directed graph with capacity hints.
func NewDirected(nodeHint int) *Directed {
	return &Directed{
		labels: make([]string, 0, nodeHint),
		index:  make(map[string]int32, nodeHint),
		out:    make([][]int32, 0, nodeHint),
		in:     make([][]int32, 0, nodeHint),
		seen:   make(map[[2]int32]struct{}),
	}
}

// AddNode inserts the labeled node if absent and returns its dense index.
func (g *Directed) AddNode(label string) int32 {
	if idx, ok := g.index[label]; ok {
		return idx
	}
	idx := int32(len(g.labels))
	g.labels = append(g.labels, label)
	g.index[label] = idx
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.invalidateCSR()
	return idx
}

// AddEdge inserts a directed edge between the labeled endpoints, creating
// nodes as needed. Duplicate edges are ignored. It reports whether the edge
// was newly added.
func (g *Directed) AddEdge(from, to string) bool {
	u := g.AddNode(from)
	v := g.AddNode(to)
	return g.AddEdgeIdx(u, v)
}

// AddEdgeIdx inserts an edge by dense index. Indices must be valid.
func (g *Directed) AddEdgeIdx(u, v int32) bool {
	key := [2]int32{u, v}
	if _, dup := g.seen[key]; dup {
		return false
	}
	g.seen[key] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.edges++
	g.invalidateCSR()
	return true
}

// HasEdge reports whether the edge (from, to) exists.
func (g *Directed) HasEdge(from, to string) bool {
	u, ok := g.index[from]
	if !ok {
		return false
	}
	v, ok := g.index[to]
	if !ok {
		return false
	}
	_, ok = g.seen[[2]int32{u, v}]
	return ok
}

// NumNodes returns the node count.
func (g *Directed) NumNodes() int { return len(g.labels) }

// NumEdges returns the edge count.
func (g *Directed) NumEdges() int { return g.edges }

// Label returns the label of node idx.
func (g *Directed) Label(idx int32) string { return g.labels[idx] }

// Index returns the dense index for a label, if present.
func (g *Directed) Index(label string) (int32, bool) {
	idx, ok := g.index[label]
	return idx, ok
}

// Out returns the out-neighbors of node idx. The returned slice is owned by
// the graph and must not be modified.
func (g *Directed) Out(idx int32) []int32 { return g.out[idx] }

// In returns the in-neighbors of node idx. The returned slice is owned by
// the graph and must not be modified.
func (g *Directed) In(idx int32) []int32 { return g.in[idx] }

// OutDegree returns the out-degree of node idx.
func (g *Directed) OutDegree(idx int32) int { return len(g.out[idx]) }

// InDegree returns the in-degree of node idx.
func (g *Directed) InDegree(idx int32) int { return len(g.in[idx]) }

// Labels returns a copy of all node labels in index order.
func (g *Directed) Labels() []string {
	out := make([]string, len(g.labels))
	copy(out, g.labels)
	return out
}

// SortAdjacency sorts every adjacency list in place; useful for
// deterministic iteration after parallel construction.
func (g *Directed) SortAdjacency() {
	for i := range g.out {
		sort.Slice(g.out[i], func(a, b int) bool { return g.out[i][a] < g.out[i][b] })
		sort.Slice(g.in[i], func(a, b int) bool { return g.in[i][a] < g.in[i][b] })
	}
	g.invalidateCSR()
}

// Validate checks internal invariants (every out-edge mirrored by an
// in-edge, degree sums equal to the edge count); it is used by tests and
// returns a descriptive error on violation.
func (g *Directed) Validate() error {
	var outSum, inSum int
	for i := range g.out {
		outSum += len(g.out[i])
		inSum += len(g.in[i])
	}
	if outSum != g.edges || inSum != g.edges {
		return fmt.Errorf("graph: degree sums (out=%d in=%d) disagree with edge count %d", outSum, inSum, g.edges)
	}
	for u := range g.out {
		for _, v := range g.out[u] {
			if v < 0 || int(v) >= len(g.labels) {
				return fmt.Errorf("graph: out-edge (%d,%d) points outside node range", u, v)
			}
			found := false
			for _, w := range g.in[v] {
				if int(w) == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: edge (%d,%d) missing from in-adjacency", u, v)
			}
		}
	}
	return nil
}
