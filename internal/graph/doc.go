// Package graph provides the graph substrate for the crowdscope analyses:
// a label-indexed directed graph, the bipartite investor→company graph of
// Section 5.1 of the paper, traversals, degree-distribution and
// degree-concentration statistics, centrality measures (degree, closeness,
// betweenness, PageRank — the predictors proposed in the paper's Section 7),
// and one-mode projections of bipartite graphs.
//
// Nodes are referenced externally by string labels (AngelList IDs in the
// analyses) and internally by dense integer indices so adjacency is stored
// in compact slices.
package graph
