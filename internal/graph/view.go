package graph

// View is the read-only directed-graph interface every analysis kernel
// consumes: node identity, adjacency rows in both directions, and the
// flattened CSR views the parallel kernels traverse. Two implementations
// exist — the mutable *Directed used while building a graph, and the
// immutable *Frozen backed directly by arrays loaded from a persisted
// snapshot. Algorithms written against View produce bit-identical results
// on either, because both present adjacency rows in the same order.
type View interface {
	NumNodes() int
	NumEdges() int
	Label(idx int32) string
	Index(label string) (int32, bool)
	// Out and In return adjacency rows owned by the graph; callers must
	// not modify them.
	Out(idx int32) []int32
	In(idx int32) []int32
	OutDegree(idx int32) int
	InDegree(idx int32) int
	// OutCSR and InCSR return flattened adjacency. For Frozen these are
	// the loaded arrays themselves (no rebuild); for Directed they are
	// built lazily and cached.
	OutCSR() *CSR
	InCSR() *CSR
}

// BipartiteView is the read-only two-mode counterpart of View, consumed
// by the community detectors, the co-investment metrics, the projections
// and the visualizations. Implemented by the mutable *Bipartite (builder
// path) and the snapshot-backed *FrozenBipartite.
type BipartiteView interface {
	NumLeft() int
	NumRight() int
	NumEdges() int
	LeftLabel(idx int32) string
	RightLabel(idx int32) string
	LeftIndex(label string) (int32, bool)
	RightIndex(label string) (int32, bool)
	// Fwd and Rev return adjacency rows owned by the graph; callers must
	// not modify them.
	Fwd(idx int32) []int32
	Rev(idx int32) []int32
	OutDegree(idx int32) int
	InDegree(idx int32) int
	HasEdge(left, right string) bool
}

var (
	_ View          = (*Directed)(nil)
	_ View          = (*Frozen)(nil)
	_ BipartiteView = (*Bipartite)(nil)
	_ BipartiteView = (*FrozenBipartite)(nil)
)

// FilterLeftMinDegree returns a new bipartite graph containing only left
// nodes of v with out-degree >= min (and the right nodes they reach). The
// paper applies this with min = 4 before community detection. Iteration
// is in left-index then row order, so the result is identical for every
// implementation of the view.
func FilterLeftMinDegree(v BipartiteView, min int) *Bipartite {
	nb := NewBipartite(v.NumLeft(), v.NumRight())
	for u := int32(0); int(u) < v.NumLeft(); u++ {
		if v.OutDegree(u) < min {
			continue
		}
		for _, r := range v.Fwd(u) {
			nb.AddEdge(v.LeftLabel(u), v.RightLabel(r))
		}
	}
	return nb
}

// ToDirected converts any bipartite view into a Directed graph whose node
// label space is the union of left and right labels, prefixed to avoid
// collisions ("L:" and "R:"). CoDA and SBM operate on this representation.
func ToDirected(v BipartiteView) *Directed {
	g := NewDirected(v.NumLeft() + v.NumRight())
	for u := int32(0); int(u) < v.NumLeft(); u++ {
		g.AddNode("L:" + v.LeftLabel(u))
	}
	for r := int32(0); int(r) < v.NumRight(); r++ {
		g.AddNode("R:" + v.RightLabel(r))
	}
	for u := int32(0); int(u) < v.NumLeft(); u++ {
		for _, r := range v.Fwd(u) {
			g.AddEdge("L:"+v.LeftLabel(u), "R:"+v.RightLabel(r))
		}
	}
	return g
}
