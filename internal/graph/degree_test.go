package graph

import (
	"math"
	"testing"
)

func TestLeftDegreeShares(t *testing.T) {
	b := NewBipartite(4, 6)
	// Degrees: i1=4, i2=2, i3=1, i4=1; total edges = 8.
	for _, c := range []string{"c1", "c2", "c3", "c4"} {
		b.AddEdge("i1", c)
	}
	b.AddEdge("i2", "c1")
	b.AddEdge("i2", "c5")
	b.AddEdge("i3", "c6")
	b.AddEdge("i4", "c6")
	shares := LeftDegreeShares(b, []int{1, 2, 4})
	if len(shares) != 3 {
		t.Fatalf("rows = %d", len(shares))
	}
	check := func(i int, nodeFrac, edgeFrac float64) {
		t.Helper()
		if math.Abs(shares[i].NodeFraction-nodeFrac) > 1e-12 {
			t.Errorf("row %d node fraction %g, want %g", i, shares[i].NodeFraction, nodeFrac)
		}
		if math.Abs(shares[i].EdgeFraction-edgeFrac) > 1e-12 {
			t.Errorf("row %d edge fraction %g, want %g", i, shares[i].EdgeFraction, edgeFrac)
		}
	}
	check(0, 1.0, 1.0)    // >=1: everyone
	check(1, 0.5, 6.0/8)  // >=2: i1,i2 holding 6 edges
	check(2, 0.25, 4.0/8) // >=4: i1 holding 4 edges
	if shares[0].MinDegree != 1 || shares[2].MinDegree != 4 {
		t.Error("thresholds not preserved")
	}
}

func TestLeftDegreeSharesEmpty(t *testing.T) {
	b := NewBipartite(0, 0)
	shares := LeftDegreeShares(b, []int{3})
	if shares[0].NodeFraction != 0 || shares[0].EdgeFraction != 0 {
		t.Error("empty graph should yield zero fractions")
	}
}

func TestLeftOutDegreesAndRightInDegrees(t *testing.T) {
	b := paperExampleStrong()
	out := LeftOutDegrees(b)
	if len(out) != 3 || out[0] != 3 || out[1] != 2 || out[2] != 2 {
		t.Errorf("out degrees = %v", out)
	}
	in := RightInDegrees(b)
	// c1: i1,i2 = 2; c2: i1,i2,i3 = 3; c3: i1,i3 = 2.
	if len(in) != 3 || in[0] != 2 || in[1] != 3 || in[2] != 2 {
		t.Errorf("in degrees = %v", in)
	}
}

func TestDegreeHistogram(t *testing.T) {
	ds, counts := DegreeHistogram([]int{1, 1, 2, 5, 5, 5})
	wantD := []int{1, 2, 5}
	wantC := []int{2, 1, 3}
	if len(ds) != 3 {
		t.Fatalf("ds = %v", ds)
	}
	for i := range ds {
		if ds[i] != wantD[i] || counts[i] != wantC[i] {
			t.Errorf("histogram row %d = (%d,%d), want (%d,%d)", i, ds[i], counts[i], wantD[i], wantC[i])
		}
	}
}

func TestProjectLeft(t *testing.T) {
	b := paperExampleStrong()
	edges := ProjectLeft(b, 1)
	// (i1,i2)=2, (i1,i3)=2, (i2,i3)=1.
	if len(edges) != 3 {
		t.Fatalf("projection edges = %v", edges)
	}
	total := 0.0
	for _, e := range edges {
		total += e.Weight
		if e.U >= e.V {
			t.Errorf("edge not canonical: %v", e)
		}
	}
	if total != 5 {
		t.Errorf("total weight = %g, want 5", total)
	}
	strong := ProjectLeft(b, 2)
	if len(strong) != 2 {
		t.Errorf("minShared=2 edges = %v", strong)
	}
	// minShared < 1 is clamped to 1.
	if got := ProjectLeft(b, 0); len(got) != 3 {
		t.Errorf("minShared=0 edges = %d, want 3", len(got))
	}
}

func TestProjectLeftDeterministic(t *testing.T) {
	b := paperExampleStrong()
	e1 := ProjectLeft(b, 1)
	e2 := ProjectLeft(b, 1)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("projection not deterministic")
		}
	}
}
