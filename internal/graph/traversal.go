package graph

// BFSFrom performs a breadth-first traversal from the start index following
// out-edges, invoking visit(node, depth) for each reachable node including
// the start. Traversal stops early if visit returns false.
func BFSFrom(g View, start int32, visit func(node int32, depth int) bool) {
	if int(start) >= g.NumNodes() {
		return
	}
	visited := make([]bool, g.NumNodes())
	queue := []int32{start}
	visited[start] = true
	depth := 0
	for len(queue) > 0 {
		var next []int32
		for _, u := range queue {
			if !visit(u, depth) {
				return
			}
			for _, v := range g.Out(u) {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		queue = next
		depth++
	}
}

// BFSFrom delegates to the View traversal.
func (g *Directed) BFSFrom(start int32, visit func(node int32, depth int) bool) {
	BFSFrom(g, start, visit)
}

// WeaklyConnectedComponents returns the component id of each node, treating
// edges as undirected, plus the number of components. Component ids are
// assigned in order of first discovery.
func WeaklyConnectedComponents(g View) ([]int32, int) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var nComp int32
	var stack []int32
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := nComp
		nComp++
		comp[s] = id
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Out(u) {
				if comp[v] < 0 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
			for _, v := range g.In(u) {
				if comp[v] < 0 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
	}
	return comp, int(nComp)
}

// WeaklyConnectedComponents delegates to the View traversal.
func (g *Directed) WeaklyConnectedComponents() ([]int32, int) {
	return WeaklyConnectedComponents(g)
}

// ShortestPathLengths runs an unweighted single-source shortest-path BFS
// over out-edges and returns the distance to every node (-1 when
// unreachable).
func ShortestPathLengths(g View, start int32) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	if int(start) >= g.NumNodes() {
		return dist
	}
	dist[start] = 0
	queue := []int32{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPathLengths delegates to the View traversal.
func (g *Directed) ShortestPathLengths(start int32) []int32 {
	return ShortestPathLengths(g, start)
}
