package graph

import (
	"fmt"
	"sort"
)

// Bipartite is a directed two-mode graph from "left" nodes to "right"
// nodes — in the paper, investment edges from investors to the companies
// they invested in (Section 5.1). Left and right label spaces are
// independent. Parallel edges are deduplicated.
type Bipartite struct {
	leftLabels  []string
	rightLabels []string
	leftIndex   map[string]int32
	rightIndex  map[string]int32
	fwd         [][]int32 // left -> right
	rev         [][]int32 // right -> left
	edges       int
	seen        map[[2]int32]struct{}
}

// NewBipartite returns an empty bipartite graph with capacity hints.
func NewBipartite(leftHint, rightHint int) *Bipartite {
	return &Bipartite{
		leftLabels:  make([]string, 0, leftHint),
		rightLabels: make([]string, 0, rightHint),
		leftIndex:   make(map[string]int32, leftHint),
		rightIndex:  make(map[string]int32, rightHint),
		fwd:         make([][]int32, 0, leftHint),
		rev:         make([][]int32, 0, rightHint),
		seen:        make(map[[2]int32]struct{}),
	}
}

// AddLeft inserts a left node if absent and returns its index.
func (b *Bipartite) AddLeft(label string) int32 {
	if idx, ok := b.leftIndex[label]; ok {
		return idx
	}
	idx := int32(len(b.leftLabels))
	b.leftLabels = append(b.leftLabels, label)
	b.leftIndex[label] = idx
	b.fwd = append(b.fwd, nil)
	return idx
}

// AddRight inserts a right node if absent and returns its index.
func (b *Bipartite) AddRight(label string) int32 {
	if idx, ok := b.rightIndex[label]; ok {
		return idx
	}
	idx := int32(len(b.rightLabels))
	b.rightLabels = append(b.rightLabels, label)
	b.rightIndex[label] = idx
	b.rev = append(b.rev, nil)
	return idx
}

// AddEdge inserts the edge left→right, creating endpoints as needed, and
// reports whether it was new.
func (b *Bipartite) AddEdge(left, right string) bool {
	u := b.AddLeft(left)
	v := b.AddRight(right)
	key := [2]int32{u, v}
	if _, dup := b.seen[key]; dup {
		return false
	}
	b.seen[key] = struct{}{}
	b.fwd[u] = append(b.fwd[u], v)
	b.rev[v] = append(b.rev[v], u)
	b.edges++
	return true
}

// HasEdge reports whether the labeled edge exists.
func (b *Bipartite) HasEdge(left, right string) bool {
	u, ok := b.leftIndex[left]
	if !ok {
		return false
	}
	v, ok := b.rightIndex[right]
	if !ok {
		return false
	}
	_, ok = b.seen[[2]int32{u, v}]
	return ok
}

// NumLeft returns the number of left (investor) nodes.
func (b *Bipartite) NumLeft() int { return len(b.leftLabels) }

// NumRight returns the number of right (company) nodes.
func (b *Bipartite) NumRight() int { return len(b.rightLabels) }

// NumEdges returns the number of edges.
func (b *Bipartite) NumEdges() int { return b.edges }

// LeftLabel returns the label of left node idx.
func (b *Bipartite) LeftLabel(idx int32) string { return b.leftLabels[idx] }

// RightLabel returns the label of right node idx.
func (b *Bipartite) RightLabel(idx int32) string { return b.rightLabels[idx] }

// LeftIndex resolves a left label.
func (b *Bipartite) LeftIndex(label string) (int32, bool) {
	idx, ok := b.leftIndex[label]
	return idx, ok
}

// RightIndex resolves a right label.
func (b *Bipartite) RightIndex(label string) (int32, bool) {
	idx, ok := b.rightIndex[label]
	return idx, ok
}

// Fwd returns the right-neighbors of left node idx (the companies an
// investor invested in). Owned by the graph; do not modify.
func (b *Bipartite) Fwd(idx int32) []int32 { return b.fwd[idx] }

// Rev returns the left-neighbors of right node idx (the investors of a
// company). Owned by the graph; do not modify.
func (b *Bipartite) Rev(idx int32) []int32 { return b.rev[idx] }

// OutDegree returns the out-degree of a left node — the paper's "number of
// companies invested".
func (b *Bipartite) OutDegree(idx int32) int { return len(b.fwd[idx]) }

// InDegree returns the in-degree of a right node — the paper's "number of
// investors of a company".
func (b *Bipartite) InDegree(idx int32) int { return len(b.rev[idx]) }

// SortAdjacency sorts all adjacency lists, making shared-neighbor
// intersections O(d1+d2) and iteration deterministic.
func (b *Bipartite) SortAdjacency() {
	for i := range b.fwd {
		s := b.fwd[i]
		sort.Slice(s, func(a, c int) bool { return s[a] < s[c] })
	}
	for i := range b.rev {
		s := b.rev[i]
		sort.Slice(s, func(a, c int) bool { return s[a] < s[c] })
	}
}

// FilterLeftMinDegree returns a new bipartite graph containing only left
// nodes with out-degree >= min (and the right nodes they reach). The paper
// applies this with min = 4 before community detection to make clusters
// statistically meaningful.
func (b *Bipartite) FilterLeftMinDegree(min int) *Bipartite {
	return FilterLeftMinDegree(b, min)
}

// ToDirected converts the bipartite graph into a Directed graph; see the
// package-level ToDirected.
func (b *Bipartite) ToDirected() *Directed {
	return ToDirected(b)
}

// Validate checks the fwd/rev mirror invariant and edge accounting.
func (b *Bipartite) Validate() error {
	var fwdSum, revSum int
	for i := range b.fwd {
		fwdSum += len(b.fwd[i])
	}
	for i := range b.rev {
		revSum += len(b.rev[i])
	}
	if fwdSum != b.edges || revSum != b.edges {
		return fmt.Errorf("bipartite: degree sums (fwd=%d rev=%d) disagree with edge count %d", fwdSum, revSum, b.edges)
	}
	for u := range b.fwd {
		for _, v := range b.fwd[u] {
			found := false
			for _, w := range b.rev[v] {
				if int(w) == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("bipartite: edge (%d,%d) missing from rev-adjacency", u, v)
			}
		}
	}
	return nil
}
