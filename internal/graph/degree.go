package graph

import "sort"

// DegreeShare is one row of a degree-concentration table: the fraction of
// left nodes whose out-degree is at least MinDegree, and the fraction of
// all edges those nodes account for. Section 5.1 of the paper reports
// (≥3 → 30% of investors / 75% of edges), (≥4 → 22.2% / 68.3%),
// (≥5 → 17.0% / 62.0%).
type DegreeShare struct {
	MinDegree    int
	NodeFraction float64
	EdgeFraction float64
}

// LeftDegreeShares computes the degree-concentration rows for the given
// thresholds over the bipartite graph's left side.
func LeftDegreeShares(b BipartiteView, thresholds []int) []DegreeShare {
	out := make([]DegreeShare, 0, len(thresholds))
	totalNodes := b.NumLeft()
	totalEdges := b.NumEdges()
	for _, k := range thresholds {
		var nodes, edges int
		for u := int32(0); int(u) < totalNodes; u++ {
			d := b.OutDegree(u)
			if d >= k {
				nodes++
				edges += d
			}
		}
		share := DegreeShare{MinDegree: k}
		if totalNodes > 0 {
			share.NodeFraction = float64(nodes) / float64(totalNodes)
		}
		if totalEdges > 0 {
			share.EdgeFraction = float64(edges) / float64(totalEdges)
		}
		out = append(out, share)
	}
	return out
}

// LeftOutDegrees returns every left node's out-degree, for CDF estimation
// (Figure 3 plots this distribution for investors).
func LeftOutDegrees(b BipartiteView) []int {
	out := make([]int, b.NumLeft())
	for u := range out {
		out[u] = b.OutDegree(int32(u))
	}
	return out
}

// RightInDegrees returns every right node's in-degree (investors per
// company; the paper reports an average of 2.6).
func RightInDegrees(b BipartiteView) []int {
	out := make([]int, b.NumRight())
	for v := range out {
		out[v] = b.InDegree(int32(v))
	}
	return out
}

// DegreeHistogram counts how many nodes have each exact degree, returned as
// sorted (degree, count) pairs.
func DegreeHistogram(degrees []int) (ds []int, counts []int) {
	m := make(map[int]int)
	for _, d := range degrees {
		m[d]++
	}
	ds = make([]int, 0, len(m))
	for d := range m {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	counts = make([]int, len(ds))
	for i, d := range ds {
		counts[i] = m[d]
	}
	return ds, counts
}
