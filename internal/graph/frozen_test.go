package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestFrozenMatchesDirected(t *testing.T) {
	g := randomDirected(60, 0.08, 7)
	f := Freeze(g)
	if f.NumNodes() != g.NumNodes() || f.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes: %d/%d vs %d/%d", f.NumNodes(), f.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		if f.Label(u) != g.Label(u) {
			t.Fatalf("label %d differs", u)
		}
		if f.OutDegree(u) != g.OutDegree(u) || f.InDegree(u) != g.InDegree(u) {
			t.Fatalf("degrees differ at %d", u)
		}
		fo, fi := f.Out(u), f.In(u)
		go_, gi := g.Out(u), g.In(u)
		for i := range fo {
			if fo[i] != go_[i] {
				t.Fatalf("out row %d differs", u)
			}
		}
		for i := range fi {
			if fi[i] != gi[i] {
				t.Fatalf("in row %d differs", u)
			}
		}
		if idx, ok := f.Index(g.Label(u)); !ok || idx != u {
			t.Fatalf("Index(%q) = %d,%v", g.Label(u), idx, ok)
		}
	}
	if _, ok := f.Index("no-such-node"); ok {
		t.Fatal("Index found a nonexistent label")
	}
}

// TestFrozenKernelsBitIdentical is the heart of the frozen contract:
// every analysis kernel must produce byte-identical float output on the
// mutable builder and its frozen snapshot.
func TestFrozenKernelsBitIdentical(t *testing.T) {
	g := randomDirected(80, 0.08, 11)
	f := Freeze(g)
	pairs := []struct {
		name string
		from func(View) []float64
	}{
		{"degree", func(v View) []float64 { return DegreeCentrality(v) }},
		{"closeness", func(v View) []float64 { return ClosenessCentralityWorkers(v, 3) }},
		{"pagerank", func(v View) []float64 { return PageRankWorkers(v, 0.85, 50, 1e-9, 3) }},
		{"betweenness", func(v View) []float64 { return BetweennessCentralityWorkers(v, 3) }},
	}
	for _, p := range pairs {
		want := p.from(g)
		got := p.from(f)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s differs between Directed and Frozen", p.name)
		}
	}
	wcG, nG := WeaklyConnectedComponents(g)
	wcF, nF := WeaklyConnectedComponents(f)
	if nG != nF || !reflect.DeepEqual(wcG, wcF) {
		t.Fatal("weakly connected components differ")
	}
	if !reflect.DeepEqual(ShortestPathLengths(g, 0), ShortestPathLengths(f, 0)) {
		t.Fatal("shortest path lengths differ")
	}
}

func TestNewFrozenValidates(t *testing.T) {
	if _, err := NewFrozen([]string{"a", "b"},
		&CSR{Offsets: []int64{0, 1}, Targets: []int32{1}},
		&CSR{Offsets: []int64{0, 0, 1}, Targets: []int32{0}}); err == nil {
		t.Fatal("mismatched out-CSR row count must fail")
	}
	if _, err := NewFrozen([]string{"a", "b"},
		&CSR{Offsets: []int64{0, 1, 1}, Targets: []int32{1}},
		&CSR{Offsets: []int64{0, 0, 2}, Targets: []int32{0, 0}}); err == nil {
		t.Fatal("edge-count disagreement between out and in must fail")
	}
}

func TestFrozenBipartiteMatchesBuilder(t *testing.T) {
	b := NewBipartite(8, 32)
	edges := [][2]string{
		{"i1", "c1"}, {"i1", "c2"}, {"i1", "c3"},
		{"i2", "c2"}, {"i2", "c3"},
		{"i3", "c1"}, {"i3", "c4"},
		{"i4", "c4"},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.SortAdjacency()
	f := FreezeBipartite(b)
	if f.NumLeft() != b.NumLeft() || f.NumRight() != b.NumRight() || f.NumEdges() != b.NumEdges() {
		t.Fatal("sizes differ")
	}
	for _, e := range edges {
		if !f.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if f.HasEdge("i4", "c1") || f.HasEdge("ghost", "c1") || f.HasEdge("i1", "ghost") {
		t.Fatal("HasEdge invented an edge")
	}
	for u := int32(0); int(u) < b.NumLeft(); u++ {
		if f.LeftLabel(u) != b.LeftLabel(u) || f.OutDegree(u) != b.OutDegree(u) {
			t.Fatalf("left node %d differs", u)
		}
	}
	for v := int32(0); int(v) < b.NumRight(); v++ {
		if f.RightLabel(v) != b.RightLabel(v) || f.InDegree(v) != b.InDegree(v) {
			t.Fatalf("right node %d differs", v)
		}
	}
	bIdx, bOK := b.LeftIndex("i3")
	if idx, ok := f.LeftIndex("i3"); !ok || !bOK || idx != bIdx {
		t.Fatalf("LeftIndex(i3) = %d,%v (builder %d,%v)", idx, ok, bIdx, bOK)
	}
	if idx, ok := f.RightIndex("c4"); !ok || idx < 0 {
		t.Fatalf("RightIndex(c4) = %d,%v", idx, ok)
	}
}

// TestFilterAndProjectFromFrozen checks that derived graphs built off a
// frozen view equal the ones built off the mutable builder: same
// filtering, same projection, same traversal results.
func TestFilterAndProjectFromFrozen(t *testing.T) {
	b := NewBipartite(16, 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		b.AddEdge("inv-"+itoa(rng.Intn(12)), "co-"+itoa(rng.Intn(20)))
	}
	b.SortAdjacency()
	f := FreezeBipartite(b)

	fb := FilterLeftMinDegree(b, 2)
	ff := FilterLeftMinDegree(f, 2)
	if fb.NumLeft() != ff.NumLeft() || fb.NumRight() != ff.NumRight() || fb.NumEdges() != ff.NumEdges() {
		t.Fatal("filtered sizes differ")
	}
	for u := int32(0); int(u) < fb.NumLeft(); u++ {
		if fb.LeftLabel(u) != ff.LeftLabel(u) || !reflect.DeepEqual(fb.Fwd(u), ff.Fwd(u)) {
			t.Fatalf("filtered row %d differs", u)
		}
	}

	db := ToDirected(b)
	df := ToDirected(f)
	if db.NumNodes() != df.NumNodes() || db.NumEdges() != df.NumEdges() {
		t.Fatal("ToDirected sizes differ")
	}
	if !reflect.DeepEqual(PageRankWorkers(db, 0.85, 30, 1e-9, 2), PageRankWorkers(df, 0.85, 30, 1e-9, 2)) {
		t.Fatal("PageRank over derived directed graphs differs")
	}
}
