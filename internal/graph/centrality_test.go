package graph

import (
	"math"
	"testing"
)

func starGraph() *Directed {
	// hub -> a,b,c and a,b,c -> hub.
	g := NewDirected(4)
	for _, n := range []string{"a", "b", "c"} {
		g.AddEdge("hub", n)
		g.AddEdge(n, "hub")
	}
	return g
}

func TestDegreeCentrality(t *testing.T) {
	g := starGraph()
	dc := g.DegreeCentrality()
	hub, _ := g.Index("hub")
	a, _ := g.Index("a")
	if math.Abs(dc[hub]-2.0) > 1e-12 { // (3+3)/3
		t.Errorf("hub centrality = %g, want 2", dc[hub])
	}
	if math.Abs(dc[a]-2.0/3) > 1e-12 {
		t.Errorf("leaf centrality = %g, want 2/3", dc[a])
	}
	empty := NewDirected(0)
	if len(empty.DegreeCentrality()) != 0 {
		t.Error("empty graph centrality should be empty")
	}
	single := NewDirected(1)
	single.AddNode("x")
	if c := single.DegreeCentrality(); c[0] != 0 {
		t.Error("single node centrality should be 0")
	}
}

func TestClosenessCentrality(t *testing.T) {
	g := starGraph()
	cc := g.ClosenessCentrality()
	hub, _ := g.Index("hub")
	a, _ := g.Index("a")
	// Hub reaches 3 nodes at distance 1: (1+1+1)/3 = 1.
	if math.Abs(cc[hub]-1) > 1e-12 {
		t.Errorf("hub closeness = %g, want 1", cc[hub])
	}
	// Leaf reaches hub at 1 and the other two leaves at 2: (1+0.5+0.5)/3.
	if math.Abs(cc[a]-2.0/3) > 1e-12 {
		t.Errorf("leaf closeness = %g, want 2/3", cc[a])
	}
}

func TestPageRank(t *testing.T) {
	g := starGraph()
	pr := g.PageRank(0.85, 100, 1e-10)
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("PageRank sums to %g", sum)
	}
	hub, _ := g.Index("hub")
	a, _ := g.Index("a")
	if pr[hub] <= pr[a] {
		t.Errorf("hub rank %g should exceed leaf rank %g", pr[hub], pr[a])
	}
	if NewDirected(0).PageRank(0.85, 10, 1e-9) != nil {
		t.Error("empty graph PageRank should be nil")
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// a -> b, b has no out-edges: dangling mass must be redistributed and
	// the ranks still sum to 1.
	g := NewDirected(2)
	g.AddEdge("a", "b")
	pr := g.PageRank(0.85, 200, 1e-12)
	if math.Abs(pr[0]+pr[1]-1) > 1e-9 {
		t.Errorf("ranks sum to %g", pr[0]+pr[1])
	}
	if pr[1] <= pr[0] {
		t.Errorf("b (%g) should outrank a (%g)", pr[1], pr[0])
	}
}

func TestBetweennessCentrality(t *testing.T) {
	// Path a -> b -> c: b carries the single shortest path a->c.
	g := NewDirected(3)
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	bc := g.BetweennessCentrality()
	a, _ := g.Index("a")
	b, _ := g.Index("b")
	c, _ := g.Index("c")
	if bc[a] != 0 || bc[c] != 0 {
		t.Errorf("endpoints should have 0 betweenness: %v", bc)
	}
	if bc[b] != 1 {
		t.Errorf("middle betweenness = %g, want 1", bc[b])
	}
	if got := NewDirected(0).BetweennessCentrality(); len(got) != 0 {
		t.Error("empty graph betweenness should be empty")
	}
}

func TestBetweennessSplitPaths(t *testing.T) {
	// a -> {b1, b2} -> c: two equal shortest paths, each midpoint gets 0.5.
	g := NewDirected(4)
	g.AddEdge("a", "b1")
	g.AddEdge("a", "b2")
	g.AddEdge("b1", "c")
	g.AddEdge("b2", "c")
	bc := g.BetweennessCentrality()
	b1, _ := g.Index("b1")
	b2, _ := g.Index("b2")
	if math.Abs(bc[b1]-0.5) > 1e-12 || math.Abs(bc[b2]-0.5) > 1e-12 {
		t.Errorf("split betweenness = %v", bc)
	}
}
