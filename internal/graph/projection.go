package graph

import "sort"

// WeightedEdge is an undirected weighted edge in a one-mode projection.
type WeightedEdge struct {
	U, V   int32
	Weight float64
}

// ProjectLeft builds the one-mode projection of the bipartite graph onto
// its left nodes: investors are connected when they co-invested in at least
// minShared companies, weighted by the number of shared companies. The
// projected-graph community baselines (Louvain, label propagation) operate
// on this structure.
//
// Complexity is sum over right nodes of deg^2, which is fine for the
// paper's avg in-degree of 2.6.
func ProjectLeft(b BipartiteView, minShared int) []WeightedEdge {
	if minShared < 1 {
		minShared = 1
	}
	weights := make(map[[2]int32]int)
	for v := int32(0); int(v) < b.NumRight(); v++ {
		investors := b.Rev(v)
		for i := 0; i < len(investors); i++ {
			for j := i + 1; j < len(investors); j++ {
				a, c := investors[i], investors[j]
				if a > c {
					a, c = c, a
				}
				weights[[2]int32{a, c}]++
			}
		}
	}
	edges := make([]WeightedEdge, 0, len(weights))
	for k, w := range weights {
		if w >= minShared {
			edges = append(edges, WeightedEdge{U: k[0], V: k[1], Weight: float64(w)})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// SharedRightCount returns |Fwd(a) ∩ Fwd(b)| — the paper's "shared
// investment size" between two investors — assuming SortAdjacency has been
// called (it falls back to a map otherwise via sortedIntersect semantics
// only if sorted; callers in this repo always sort first).
func SharedRightCount(b BipartiteView, a, c int32) int {
	return sortedIntersectLen(b.Fwd(a), b.Fwd(c))
}

// sortedIntersectLen returns the intersection size of two ascending-sorted
// slices.
func sortedIntersectLen(x, y []int32) int {
	i, j, n := 0, 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			n++
			i++
			j++
		case x[i] < y[j]:
			i++
		default:
			j++
		}
	}
	return n
}
