package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func capFixture(t *testing.T) *Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	b := NewBipartite(0, 0)
	for u := 0; u < 40; u++ {
		deg := 1 + rng.Intn(20)
		for e := 0; e < deg; e++ {
			b.AddEdge(fmt.Sprintf("u%d", u), fmt.Sprintf("s%d", rng.Intn(60)))
		}
	}
	return b
}

func TestCapLeftDegree(t *testing.T) {
	b := capFixture(t)
	capped := CapLeftDegree(b, 5, 7)

	for u := int32(0); int(u) < capped.NumLeft(); u++ {
		if capped.OutDegree(u) > 5 {
			t.Fatalf("left %s keeps %d edges, cap is 5", capped.LeftLabel(u), capped.OutDegree(u))
		}
		// Every kept edge must exist in the original, and light nodes
		// keep their full row.
		orig, ok := b.LeftIndex(capped.LeftLabel(u))
		if !ok {
			t.Fatalf("capped graph invented left node %s", capped.LeftLabel(u))
		}
		if b.OutDegree(orig) <= 5 && capped.OutDegree(u) != b.OutDegree(orig) {
			t.Fatalf("light node %s lost edges: %d -> %d", capped.LeftLabel(u), b.OutDegree(orig), capped.OutDegree(u))
		}
		prevPos := -1
		for _, r := range capped.Fwd(u) {
			if !b.HasEdge(capped.LeftLabel(u), capped.RightLabel(r)) {
				t.Fatalf("capped graph invented edge %s->%s", capped.LeftLabel(u), capped.RightLabel(r))
			}
			// Row order must follow the original row order.
			pos := -1
			for i, or := range b.Fwd(orig) {
				if b.RightLabel(or) == capped.RightLabel(r) && i > prevPos {
					pos = i
					break
				}
			}
			if pos < 0 {
				t.Fatalf("kept edges of %s not in original row order", capped.LeftLabel(u))
			}
			prevPos = pos
		}
	}
}

func TestCapLeftDegreeDeterministic(t *testing.T) {
	b := capFixture(t)
	a1 := CapLeftDegree(b, 4, 11)
	a2 := CapLeftDegree(b, 4, 11)
	if a1.NumEdges() != a2.NumEdges() {
		t.Fatalf("edge counts differ across runs: %d vs %d", a1.NumEdges(), a2.NumEdges())
	}
	for u := int32(0); int(u) < a1.NumLeft(); u++ {
		r1, r2 := a1.Fwd(u), a2.Fwd(u)
		if len(r1) != len(r2) {
			t.Fatalf("row %d lengths differ", u)
		}
		for i := range r1 {
			if a1.RightLabel(r1[i]) != a2.RightLabel(r2[i]) {
				t.Fatalf("row %d differs at %d", u, i)
			}
		}
	}
	// A different seed picks a different sample for at least one heavy row
	// (overwhelmingly likely at these sizes).
	a3 := CapLeftDegree(b, 4, 12)
	same := true
	for u := int32(0); int(u) < a1.NumLeft() && same; u++ {
		r1, r3 := a1.Fwd(u), a3.Fwd(u)
		if len(r1) != len(r3) {
			same = false
			break
		}
		for i := range r1 {
			if a1.RightLabel(r1[i]) != a3.RightLabel(r3[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed change produced an identical sample (sampling not seeded?)")
	}
}
