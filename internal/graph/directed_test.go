package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestDirectedBasics(t *testing.T) {
	g := NewDirected(4)
	if !g.AddEdge("a", "b") {
		t.Fatal("first edge should be new")
	}
	if g.AddEdge("a", "b") {
		t.Fatal("duplicate edge should not be added")
	}
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("HasEdge wrong")
	}
	if g.HasEdge("x", "a") || g.HasEdge("a", "x") {
		t.Fatal("HasEdge should be false for unknown labels")
	}
	idx, ok := g.Index("b")
	if !ok {
		t.Fatal("missing index for b")
	}
	if g.Label(idx) != "b" {
		t.Fatal("label round-trip failed")
	}
	if g.OutDegree(idx) != 1 || g.InDegree(idx) != 1 {
		t.Fatalf("degrees of b: out=%d in=%d", g.OutDegree(idx), g.InDegree(idx))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedSelfLoop(t *testing.T) {
	g := NewDirected(1)
	g.AddEdge("a", "a")
	if g.NumEdges() != 1 {
		t.Fatal("self loop not counted")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedLabels(t *testing.T) {
	g := NewDirected(2)
	g.AddNode("x")
	g.AddNode("y")
	labels := g.Labels()
	labels[0] = "mutated"
	if g.Label(0) != "x" {
		t.Fatal("Labels() must return a copy")
	}
}

func TestDirectedValidateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewDirected(50)
	for i := 0; i < 500; i++ {
		g.AddEdge(fmt.Sprint("n", rng.Intn(50)), fmt.Sprint("n", rng.Intn(50)))
	}
	g.SortAdjacency()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBFSFrom(t *testing.T) {
	g := NewDirected(5)
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	g.AddNode("isolated")
	start, _ := g.Index("a")
	depths := map[string]int{}
	g.BFSFrom(start, func(n int32, d int) bool {
		depths[g.Label(n)] = d
		return true
	})
	want := map[string]int{"a": 0, "b": 1, "c": 1, "d": 2}
	if len(depths) != len(want) {
		t.Fatalf("visited %v", depths)
	}
	for k, v := range want {
		if depths[k] != v {
			t.Errorf("depth[%s] = %d, want %d", k, depths[k], v)
		}
	}
	// Early stop.
	count := 0
	g.BFSFrom(start, func(int32, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
	// Out-of-range start is a no-op.
	g.BFSFrom(99, func(int32, int) bool { t.Fatal("should not visit"); return true })
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := NewDirected(6)
	g.AddEdge("a", "b")
	g.AddEdge("c", "b") // weakly connects c to {a,b}
	g.AddEdge("x", "y")
	g.AddNode("lonely")
	comp, n := g.WeaklyConnectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	idx := func(s string) int32 { i, _ := g.Index(s); return i }
	if comp[idx("a")] != comp[idx("b")] || comp[idx("b")] != comp[idx("c")] {
		t.Error("a,b,c should share a component")
	}
	if comp[idx("x")] != comp[idx("y")] {
		t.Error("x,y should share a component")
	}
	if comp[idx("lonely")] == comp[idx("a")] || comp[idx("lonely")] == comp[idx("x")] {
		t.Error("lonely should be alone")
	}
}

func TestShortestPathLengths(t *testing.T) {
	g := NewDirected(5)
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	g.AddNode("far")
	start, _ := g.Index("a")
	dist := g.ShortestPathLengths(start)
	idx := func(s string) int32 { i, _ := g.Index(s); return i }
	if dist[idx("a")] != 0 || dist[idx("b")] != 1 || dist[idx("c")] != 1 {
		t.Errorf("dist = %v", dist)
	}
	if dist[idx("far")] != -1 {
		t.Error("unreachable node should have dist -1")
	}
}
