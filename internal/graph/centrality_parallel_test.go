package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomDirected builds a seeded Erdős–Rényi-ish directed graph with a
// few disconnected stragglers and dangling nodes, exercising every
// kernel edge case (unreachable nodes, outdegree 0, multiple shortest
// paths).
func randomDirected(n int, p float64, seed int64) *Directed {
	rng := rand.New(rand.NewSource(seed))
	g := NewDirected(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprint("n", i))
	}
	for u := 0; u < n; u++ {
		if u%17 == 0 {
			continue // dangling node
		}
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdgeIdx(int32(u), int32(v))
			}
		}
	}
	return g
}

// betweennessSerial is the pre-parallelization reference implementation,
// kept verbatim so the equivalence tests can detect any drift in the
// parallel kernel's reduction order.
func betweennessSerial(g *Directed) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for s := int32(0); int(s) < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			stack = append(stack, u)
			for _, v := range g.out[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, p := range preds[w] {
				delta[p] += sigma[p] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

// closenessSerial is the pre-parallelization reference implementation.
func closenessSerial(g *Directed) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	denom := float64(n - 1)
	for s := int32(0); int(s) < n; s++ {
		dist := g.ShortestPathLengths(s)
		var sum float64
		for t, d := range dist {
			if int32(t) == s || d <= 0 {
				continue
			}
			sum += 1 / float64(d)
		}
		out[s] = sum / denom
	}
	return out
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: node %d differs: got %v (%#x), want %v (%#x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestBetweennessParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomDirected(120, 0.05, seed)
		want := betweennessSerial(g)
		for _, workers := range []int{1, 4} {
			got := g.BetweennessCentralityWorkers(workers)
			bitsEqual(t, fmt.Sprintf("betweenness seed=%d workers=%d", seed, workers), got, want)
		}
	}
}

func TestClosenessParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := randomDirected(120, 0.05, seed)
		want := closenessSerial(g)
		for _, workers := range []int{1, 4} {
			got := g.ClosenessCentralityWorkers(workers)
			bitsEqual(t, fmt.Sprintf("closeness seed=%d workers=%d", seed, workers), got, want)
		}
	}
}

func TestPageRankParallelWorkerInvariant(t *testing.T) {
	g := randomDirected(300, 0.03, 5)
	want := g.PageRankWorkers(0.85, 100, 1e-10, 1)
	for _, workers := range []int{2, 4, 8} {
		got := g.PageRankWorkers(0.85, 100, 1e-10, workers)
		bitsEqual(t, fmt.Sprintf("pagerank workers=%d", workers), got, want)
	}
	// Sanity against the push-based formulation: same fixed point.
	var sum float64
	for _, v := range want {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g", sum)
	}
}

func TestCSRMatchesAdjacency(t *testing.T) {
	g := randomDirected(60, 0.08, 9)
	csr := g.OutCSR()
	in := g.InCSR()
	if csr.NumNodes() != g.NumNodes() || in.NumNodes() != g.NumNodes() {
		t.Fatal("CSR node count mismatch")
	}
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		row := csr.Row(u)
		if len(row) != len(g.out[u]) || csr.Degree(u) != len(g.out[u]) {
			t.Fatalf("node %d: CSR row length %d != %d", u, len(row), len(g.out[u]))
		}
		for i, v := range g.out[u] {
			if row[i] != v {
				t.Fatalf("node %d: CSR row order differs at %d", u, i)
			}
		}
		inRow := in.Row(u)
		for i, v := range g.in[u] {
			if inRow[i] != v {
				t.Fatalf("node %d: in-CSR row order differs at %d", u, i)
			}
		}
	}
}

func TestCSRInvalidatedOnMutation(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge("a", "b")
	before := g.OutCSR()
	if before.Degree(0) != 1 {
		t.Fatal("unexpected initial degree")
	}
	g.AddEdge("a", "c")
	after := g.OutCSR()
	if after == before {
		t.Fatal("CSR not invalidated by AddEdge")
	}
	if after.Degree(0) != 2 {
		t.Fatalf("stale CSR: degree %d, want 2", after.Degree(0))
	}
}
