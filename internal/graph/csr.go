package graph

// CSR is a flattened compressed-sparse-row adjacency view: the neighbors
// of node u occupy Targets[Offsets[u]:Offsets[u+1]]. Row order preserves
// the graph's adjacency-list order, so algorithms that switch from
// [][]int32 traversal to CSR traversal visit neighbors in exactly the
// same sequence — only the memory layout changes (one contiguous array
// instead of n separately allocated slices), which keeps the parallel
// BFS kernels cache-local.
type CSR struct {
	Offsets []int64
	Targets []int32
}

// Row returns node u's neighbor slice. The slice aliases the CSR's
// backing array and must not be modified.
func (c *CSR) Row(u int32) []int32 { return c.Targets[c.Offsets[u]:c.Offsets[u+1]] }

// Degree returns the length of node u's row.
func (c *CSR) Degree(u int32) int { return int(c.Offsets[u+1] - c.Offsets[u]) }

// NumNodes returns the number of rows.
func (c *CSR) NumNodes() int { return len(c.Offsets) - 1 }

func buildCSR(adj [][]int32, edges int) *CSR {
	c := &CSR{
		Offsets: make([]int64, len(adj)+1),
		Targets: make([]int32, 0, edges),
	}
	for i, row := range adj {
		c.Offsets[i] = int64(len(c.Targets))
		c.Targets = append(c.Targets, row...)
	}
	c.Offsets[len(adj)] = int64(len(c.Targets))
	return c
}

// OutCSR returns a cached CSR view of the out-adjacency. The view is
// rebuilt lazily after mutations; like the rest of Directed, building it
// concurrently with mutation is not safe, but once obtained the view is
// read-only and safe to share across goroutines.
func (g *Directed) OutCSR() *CSR {
	if g.csrOut == nil {
		g.csrOut = buildCSR(g.out, g.edges)
	}
	return g.csrOut
}

// InCSR returns the cached CSR view of the in-adjacency.
func (g *Directed) InCSR() *CSR {
	if g.csrIn == nil {
		g.csrIn = buildCSR(g.in, g.edges)
	}
	return g.csrIn
}

func (g *Directed) invalidateCSR() {
	g.csrOut = nil
	g.csrIn = nil
}
