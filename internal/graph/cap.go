package graph

import "math/rand"

// CapLeftDegree returns a subgraph of v in which every left node keeps
// at most cap of its edges. Nodes at or under the cap keep their full
// row; heavier nodes keep a uniform reservoir sample of cap edges, with
// the kept edges re-emitted in their original row order. Sampling is
// driven by a single seeded generator walked in left-index order, so the
// result is deterministic for a given (view, cap, seed) regardless of
// the view implementation.
//
// This is the estimator backing budgeted analytics at paper scale:
// community detection cost scales with edge count, and capping the few
// super-investors (out-degree up to ~1000) bounds the edge total while
// uniform per-row sampling preserves each investor's portfolio
// composition in expectation.
func CapLeftDegree(v BipartiteView, cap int, seed int64) *Bipartite {
	if cap < 1 {
		cap = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nb := NewBipartite(v.NumLeft(), v.NumRight())
	keep := make([]int, cap)
	for u := int32(0); int(u) < v.NumLeft(); u++ {
		row := v.Fwd(u)
		if len(row) <= cap {
			for _, r := range row {
				nb.AddEdge(v.LeftLabel(u), v.RightLabel(r))
			}
			continue
		}
		// Reservoir over row positions, then restore row order.
		keep = keep[:cap]
		for i := range keep {
			keep[i] = i
		}
		for i := cap; i < len(row); i++ {
			if j := rng.Intn(i + 1); j < cap {
				keep[j] = i
			}
		}
		sortInts(keep)
		for _, i := range keep {
			nb.AddEdge(v.LeftLabel(u), v.RightLabel(row[i]))
		}
	}
	return nb
}

// sortInts is an insertion sort: keep slices are small (the cap) and
// nearly sorted, and this avoids pulling package sort into the hot loop.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
