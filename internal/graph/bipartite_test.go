package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperExample builds the Figure 8a "strong community" toy graph:
// 3 investors, 3 companies, investor i1 -> {c1,c2,c3}, i2 -> {c1,c2},
// i3 -> {c2,c3}.
func paperExampleStrong() *Bipartite {
	b := NewBipartite(3, 3)
	b.AddEdge("i1", "c1")
	b.AddEdge("i1", "c2")
	b.AddEdge("i1", "c3")
	b.AddEdge("i2", "c1")
	b.AddEdge("i2", "c2")
	b.AddEdge("i3", "c2")
	b.AddEdge("i3", "c3")
	b.SortAdjacency()
	return b
}

func TestBipartiteBasics(t *testing.T) {
	b := paperExampleStrong()
	if b.NumLeft() != 3 || b.NumRight() != 3 || b.NumEdges() != 7 {
		t.Fatalf("L=%d R=%d E=%d", b.NumLeft(), b.NumRight(), b.NumEdges())
	}
	if b.AddEdge("i1", "c1") {
		t.Fatal("duplicate edge added")
	}
	if !b.HasEdge("i1", "c1") || b.HasEdge("i3", "c1") {
		t.Fatal("HasEdge wrong")
	}
	if b.HasEdge("zz", "c1") || b.HasEdge("i1", "zz") {
		t.Fatal("HasEdge should be false for unknown labels")
	}
	u, ok := b.LeftIndex("i2")
	if !ok || b.LeftLabel(u) != "i2" {
		t.Fatal("left index round trip")
	}
	v, ok := b.RightIndex("c3")
	if !ok || b.RightLabel(v) != "c3" {
		t.Fatal("right index round trip")
	}
	if b.OutDegree(u) != 2 {
		t.Errorf("i2 out-degree = %d", b.OutDegree(u))
	}
	if b.InDegree(v) != 2 {
		t.Errorf("c3 in-degree = %d", b.InDegree(v))
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedRightCountPaperToyExamples(t *testing.T) {
	// Figure 8a: shared sizes are (i1,i2)=2, (i1,i3)=2, (i2,i3)=1;
	// average (2+2+1)/3 = 1.67 per the paper.
	b := paperExampleStrong()
	idx := func(s string) int32 { i, _ := b.LeftIndex(s); return i }
	cases := []struct {
		a, c string
		want int
	}{
		{"i1", "i2", 2},
		{"i1", "i3", 2},
		{"i2", "i3", 1},
	}
	for _, c := range cases {
		if got := SharedRightCount(b, idx(c.a), idx(c.c)); got != c.want {
			t.Errorf("shared(%s,%s) = %d, want %d", c.a, c.c, got, c.want)
		}
	}
}

func TestFilterLeftMinDegree(t *testing.T) {
	b := paperExampleStrong()
	f := b.FilterLeftMinDegree(3)
	if f.NumLeft() != 1 {
		t.Fatalf("filtered left = %d, want 1 (only i1 has degree 3)", f.NumLeft())
	}
	if _, ok := f.LeftIndex("i1"); !ok {
		t.Fatal("i1 missing after filter")
	}
	if f.NumEdges() != 3 || f.NumRight() != 3 {
		t.Fatalf("filtered E=%d R=%d", f.NumEdges(), f.NumRight())
	}
	// min < 1 keeps everything, including degree-0 nodes? Degree-0 left
	// nodes have no edges so they are dropped by construction; assert the
	// edge set is preserved.
	all := b.FilterLeftMinDegree(0)
	if all.NumEdges() != b.NumEdges() {
		t.Fatalf("filter(0) lost edges: %d vs %d", all.NumEdges(), b.NumEdges())
	}
}

func TestToDirected(t *testing.T) {
	b := paperExampleStrong()
	g := b.ToDirected()
	if g.NumNodes() != 6 || g.NumEdges() != 7 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge("L:i1", "R:c1") {
		t.Fatal("edge missing in directed view")
	}
	if g.HasEdge("R:c1", "L:i1") {
		t.Fatal("directed view should not have reverse edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random bipartite graphs, the sum of left out-degrees, the
// sum of right in-degrees, and NumEdges agree; Validate passes.
func TestBipartiteDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBipartite(10, 10)
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			b.AddEdge(fmt.Sprint("i", rng.Intn(10)), fmt.Sprint("c", rng.Intn(10)))
		}
		var outSum, inSum int
		for u := int32(0); int(u) < b.NumLeft(); u++ {
			outSum += b.OutDegree(u)
		}
		for v := int32(0); int(v) < b.NumRight(); v++ {
			inSum += b.InDegree(v)
		}
		return outSum == b.NumEdges() && inSum == b.NumEdges() && b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SharedRightCount is symmetric and bounded by min degree.
func TestSharedRightCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		b := NewBipartite(8, 12)
		for i := 0; i < 60; i++ {
			b.AddEdge(fmt.Sprint("i", rng.Intn(8)), fmt.Sprint("c", rng.Intn(12)))
		}
		b.SortAdjacency()
		for a := int32(0); int(a) < b.NumLeft(); a++ {
			for c := a + 1; int(c) < b.NumLeft(); c++ {
				s1 := SharedRightCount(b, a, c)
				s2 := SharedRightCount(b, c, a)
				if s1 != s2 {
					t.Fatalf("asymmetric shared count: %d vs %d", s1, s2)
				}
				min := b.OutDegree(a)
				if d := b.OutDegree(c); d < min {
					min = d
				}
				if s1 > min {
					t.Fatalf("shared %d exceeds min degree %d", s1, min)
				}
			}
		}
	}
}
