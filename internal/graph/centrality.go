package graph

// Centrality measures: the paper's Section 7 proposes node degree,
// connectivity and centrality as predictive features for startup success
// ("a high measure of centrality would indicate the ability of a firm to
// bridge investors to potential customers"). This file implements the
// standard suite over the Directed graph.

// DegreeCentrality returns (in+out degree) / (n-1) per node; 0 for n <= 1.
func (g *Directed) DegreeCentrality() []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	denom := float64(n - 1)
	for i := 0; i < n; i++ {
		out[i] = float64(len(g.out[i])+len(g.in[i])) / denom
	}
	return out
}

// ClosenessCentrality returns the harmonic closeness of each node over
// out-edges: sum over reachable targets of 1/d(u,t), normalized by (n-1).
// Harmonic closeness handles disconnected graphs gracefully.
func (g *Directed) ClosenessCentrality() []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	denom := float64(n - 1)
	for s := int32(0); int(s) < n; s++ {
		dist := g.ShortestPathLengths(s)
		var sum float64
		for t, d := range dist {
			if int32(t) == s || d <= 0 {
				continue
			}
			sum += 1 / float64(d)
		}
		out[s] = sum / denom
	}
	return out
}

// PageRank computes PageRank over out-edges with the given damping factor
// and iteration/tolerance limits. Dangling-node mass is redistributed
// uniformly. Scores sum to 1.
func (g *Directed) PageRank(damping float64, maxIter int, tol float64) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			if len(g.out[u]) == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(len(g.out[u]))
			for _, v := range g.out[u] {
				next[v] += share
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		var delta float64
		for i := range next {
			nv := base + damping*next[i]
			if d := nv - rank[i]; d >= 0 {
				delta += d
			} else {
				delta -= d
			}
			rank[i] = nv
		}
		if delta < tol {
			break
		}
	}
	return rank
}

// BetweennessCentrality computes exact betweenness via Brandes' algorithm
// over out-edges (unweighted). O(nm) — intended for the per-community
// subgraphs, not the full crawl graph.
func (g *Directed) BetweennessCentrality() []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for s := int32(0); int(s) < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			stack = append(stack, u)
			for _, v := range g.out[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, p := range preds[w] {
				delta[p] += sigma[p] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}
