package graph

// Centrality measures: the paper's Section 7 proposes node degree,
// connectivity and centrality as predictive features for startup success
// ("a high measure of centrality would indicate the ability of a firm to
// bridge investors to potential customers"). This file implements the
// standard suite over the read-only View interface, so every kernel runs
// unchanged on the mutable Directed builder and on Frozen snapshots; the
// Directed methods are thin wrappers kept for convenience.
//
// The heavy kernels (Brandes betweenness, harmonic closeness, PageRank)
// decompose per source / per node-range and run on the shared
// parallel.Pool. Every parallel path is deterministic: results are
// bit-identical for any worker count because floating-point reductions
// happen in a fixed order (per-source merges serialized in source order
// via Pool.Ordered, node-range partials folded in range order). The
// no-argument methods use the process-default pool; the *Workers variants
// take an explicit bound (<= 0 selects the default pool).

import "crowdscope/internal/parallel"

// DegreeCentrality returns (in+out degree) / (n-1) per node; 0 for n <= 1.
func DegreeCentrality(g View) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	denom := float64(n - 1)
	for i := 0; i < n; i++ {
		out[i] = float64(g.OutDegree(int32(i))+g.InDegree(int32(i))) / denom
	}
	return out
}

// DegreeCentrality returns (in+out degree) / (n-1) per node; 0 for n <= 1.
func (g *Directed) DegreeCentrality() []float64 { return DegreeCentrality(g) }

// ClosenessCentrality returns the harmonic closeness of each node over
// out-edges: sum over reachable targets of 1/d(u,t), normalized by (n-1).
// Harmonic closeness handles disconnected graphs gracefully.
func (g *Directed) ClosenessCentrality() []float64 {
	return ClosenessCentralityWorkers(g, 0)
}

// ClosenessCentralityWorkers delegates to the View kernel.
func (g *Directed) ClosenessCentralityWorkers(workers int) []float64 {
	return ClosenessCentralityWorkers(g, workers)
}

// ClosenessCentralityWorkers is ClosenessCentrality under an explicit
// worker bound. Sources are independent (each writes only its own slot),
// so the result is identical for every worker count.
func ClosenessCentralityWorkers(g View, workers int) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	denom := float64(n - 1)
	csr := g.OutCSR()
	pool := parallel.New(workers)
	scratch := make([]*bfsScratch, pool.WorkersFor(n))
	for i := range scratch {
		scratch[i] = newBFSScratch(n)
	}
	pool.EachWorker(n, func(w, s int) {
		sc := scratch[w]
		sc.bfs(csr, int32(s))
		var sum float64
		for t, d := range sc.dist {
			if int32(t) == int32(s) || d <= 0 {
				continue
			}
			sum += 1 / float64(d)
		}
		out[s] = sum / denom
	})
	return out
}

// bfsScratch holds one worker's BFS state, reused across sources.
type bfsScratch struct {
	dist  []int32
	queue []int32
}

func newBFSScratch(n int) *bfsScratch {
	return &bfsScratch{dist: make([]int32, n), queue: make([]int32, 0, n)}
}

// bfs fills sc.dist with hop counts from s (-1 when unreachable).
func (sc *bfsScratch) bfs(csr *CSR, s int32) {
	for i := range sc.dist {
		sc.dist[i] = -1
	}
	sc.dist[s] = 0
	sc.queue = append(sc.queue[:0], s)
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		du := sc.dist[u]
		for _, v := range csr.Row(u) {
			if sc.dist[v] < 0 {
				sc.dist[v] = du + 1
				sc.queue = append(sc.queue, v)
			}
		}
	}
}

// PageRank computes PageRank over out-edges with the given damping factor
// and iteration/tolerance limits. Dangling-node mass is redistributed
// uniformly. Scores sum to 1.
func (g *Directed) PageRank(damping float64, maxIter int, tol float64) []float64 {
	return PageRankWorkers(g, damping, maxIter, tol, 0)
}

// PageRankWorkers delegates to the View kernel.
func (g *Directed) PageRankWorkers(damping float64, maxIter int, tol float64, workers int) []float64 {
	return PageRankWorkers(g, damping, maxIter, tol, workers)
}

// pageRankChunk is the fixed node-range size PageRank partitions over.
// Chunk boundaries are independent of the worker count, and chunk
// partials (dangling mass, convergence delta) fold in chunk order, so
// results are bit-identical for every worker count.
const pageRankChunk = 2048

// PageRankWorkers is PageRank under an explicit worker bound. The kernel
// is pull-based: each node gathers rank/outdegree from its in-neighbors
// over the cache-local InCSR view, making node ranges embarrassingly
// parallel with no scatter races.
func PageRankWorkers(g View, damping float64, maxIter int, tol float64, workers int) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	inCSR := g.InCSR()
	outDeg := make([]float64, n)
	for i := range outDeg {
		outDeg[i] = float64(g.OutDegree(int32(i)))
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	pool := parallel.New(workers)
	nChunks := (n + pageRankChunk - 1) / pageRankChunk
	dangParts := make([]float64, nChunks)
	deltaParts := make([]float64, nChunks)
	bounds := func(c int) (int32, int32) {
		lo := c * pageRankChunk
		hi := lo + pageRankChunk
		if hi > n {
			hi = n
		}
		return int32(lo), int32(hi)
	}
	for iter := 0; iter < maxIter; iter++ {
		pool.Each(nChunks, func(c int) {
			lo, hi := bounds(c)
			var d float64
			for u := lo; u < hi; u++ {
				if outDeg[u] == 0 {
					d += rank[u]
				}
			}
			dangParts[c] = d
		})
		var dangling float64
		for _, d := range dangParts {
			dangling += d
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		pool.Each(nChunks, func(c int) {
			lo, hi := bounds(c)
			var dl float64
			for v := lo; v < hi; v++ {
				var sum float64
				for _, u := range inCSR.Row(v) {
					sum += rank[u] / outDeg[u]
				}
				nv := base + damping*sum
				if d := nv - rank[v]; d >= 0 {
					dl += d
				} else {
					dl -= d
				}
				next[v] = nv
			}
			deltaParts[c] = dl
		})
		var delta float64
		for _, d := range deltaParts {
			delta += d
		}
		rank, next = next, rank
		if delta < tol {
			break
		}
	}
	return rank
}

// BetweennessCentrality computes exact betweenness via Brandes' algorithm
// over out-edges (unweighted). O(nm) total work, decomposed per source
// across the shared pool — the SNAP-style parallelization that makes this
// usable beyond the per-community subgraphs.
func (g *Directed) BetweennessCentrality() []float64 {
	return BetweennessCentralityWorkers(g, 0)
}

// BetweennessCentralityWorkers delegates to the View kernel.
func (g *Directed) BetweennessCentralityWorkers(workers int) []float64 {
	return BetweennessCentralityWorkers(g, workers)
}

// BetweennessCentralityWorkers is BetweennessCentrality under an explicit
// worker bound. Each worker runs whole source BFS/dependency passes in
// private scratch; per-source delta vectors merge into the global
// accumulator serialized in source order, so the floating-point sum order
// matches the serial algorithm exactly and the output is bit-identical
// for every worker count.
func BetweennessCentralityWorkers(g View, workers int) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	csr := g.OutCSR()
	pool := parallel.New(workers)
	scratch := make([]*brandesScratch, pool.WorkersFor(n))
	for i := range scratch {
		scratch[i] = newBrandesScratch(n)
	}
	pool.Ordered(n,
		func(w, s int) {
			scratch[w].run(csr, int32(s))
		},
		func(w, s int) {
			sc := scratch[w]
			for _, node := range sc.stack {
				if node != int32(s) {
					bc[node] += sc.delta[node]
				}
			}
		})
	return bc
}

// brandesScratch holds one worker's per-source state for Brandes'
// algorithm. Only nodes reached from the previous source (those on the
// stack) are dirty, so resets touch O(reached) entries instead of O(n).
type brandesScratch struct {
	dist  []int32
	sigma []float64
	delta []float64
	preds [][]int32
	stack []int32
	queue []int32
}

func newBrandesScratch(n int) *brandesScratch {
	sc := &brandesScratch{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		preds: make([][]int32, n),
		stack: make([]int32, 0, n),
		queue: make([]int32, 0, n),
	}
	for i := range sc.dist {
		sc.dist[i] = -1
	}
	return sc
}

// run executes the BFS and dependency-accumulation phases for source s,
// leaving final delta values and the visit stack for the merge phase.
func (sc *brandesScratch) run(csr *CSR, s int32) {
	for _, u := range sc.stack {
		sc.dist[u] = -1
		sc.sigma[u] = 0
		sc.delta[u] = 0
		sc.preds[u] = sc.preds[u][:0]
	}
	sc.stack = sc.stack[:0]
	sc.queue = sc.queue[:0]
	sc.dist[s] = 0
	sc.sigma[s] = 1
	sc.queue = append(sc.queue, s)
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		sc.stack = append(sc.stack, u)
		du := sc.dist[u]
		for _, v := range csr.Row(u) {
			if sc.dist[v] < 0 {
				sc.dist[v] = du + 1
				sc.queue = append(sc.queue, v)
			}
			if sc.dist[v] == du+1 {
				sc.sigma[v] += sc.sigma[u]
				sc.preds[v] = append(sc.preds[v], u)
			}
		}
	}
	for i := len(sc.stack) - 1; i >= 0; i-- {
		w := sc.stack[i]
		for _, p := range sc.preds[w] {
			sc.delta[p] += sc.sigma[p] / sc.sigma[w] * (1 + sc.delta[w])
		}
	}
}
