package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// BoundedZipf samples integers in [1, max] with P(k) proportional to
// k^(-s). It drives the long-tailed investments-per-investor distribution
// of Figure 3 (mean ≈3.3, median 1, max ≈1000 at paper scale).
//
// Sampling is by inversion over the precomputed CDF, O(log max) per draw.
type BoundedZipf struct {
	cdf []float64 // cdf[k-1] = P(X <= k)
	max int
	s   float64
}

// NewBoundedZipf builds the sampler. It returns an error if max < 1 or the
// exponent is not positive.
func NewBoundedZipf(s float64, max int) (*BoundedZipf, error) {
	if max < 1 {
		return nil, fmt.Errorf("stats: zipf max must be >= 1, got %d", max)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: zipf exponent must be > 0, got %g", s)
	}
	cdf := make([]float64, max)
	var total float64
	for k := 1; k <= max; k++ {
		total += math.Pow(float64(k), -s)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &BoundedZipf{cdf: cdf, max: max, s: s}, nil
}

// Sample draws one value in [1, max].
func (z *BoundedZipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, z.max-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Mean returns the exact mean of the bounded Zipf distribution.
func (z *BoundedZipf) Mean() float64 {
	var num, den float64
	for k := 1; k <= z.max; k++ {
		p := math.Pow(float64(k), -z.s)
		num += float64(k) * p
		den += p
	}
	return num / den
}

// Alias is Walker's alias-method sampler over a finite discrete
// distribution: O(n) setup, O(1) per draw. Used for weighted company /
// community selection in the generator.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias sampler from non-negative weights. It returns an
// error if no weight is positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: alias sampler needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: alias weight %d is invalid: %g", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: alias sampler needs a positive total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws one index with probability proportional to its weight.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// LogNormal draws from a log-normal distribution with the given parameters
// of the underlying normal; used for funding-round amounts and social
// engagement counts (likes, tweets, followers), which are heavy-tailed.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}
