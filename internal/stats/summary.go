package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics in one pass plus a sort for the
// median. An empty sample yields a zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := Summary{
		N:   len(sample),
		Min: sample[0],
		Max: sample[0],
	}
	var sum float64
	for _, v := range sample {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(sample))
	var ss float64
	for _, v := range sample {
		d := v - s.Mean
		ss += d * d
	}
	if len(sample) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(sample)-1))
	}
	s.Median = Median(sample)
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// Median returns the sample median (average of the two central order
// statistics for even n), or 0 for an empty sample. The input is not
// modified.
func Median(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Variance returns the unbiased sample variance, or 0 when n < 2.
func Variance(sample []float64) float64 {
	if len(sample) < 2 {
		return 0
	}
	m := Mean(sample)
	var ss float64
	for _, v := range sample {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(sample)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(sample []float64) float64 { return math.Sqrt(Variance(sample)) }

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method. The input is not modified.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// MedianInt returns the median of an integer sample as a float64.
func MedianInt(sample []int) float64 {
	f := make([]float64, len(sample))
	for i, v := range sample {
		f[i] = float64(v)
	}
	return Median(f)
}

// Floats converts an int slice to float64, a convenience for feeding count
// data (degrees, likes, tweets) into the estimators.
func Floats(sample []int) []float64 {
	f := make([]float64, len(sample))
	for i, v := range sample {
		f[i] = float64(v)
	}
	return f
}
