package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonBasics(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point not rejected")
	}
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive r = %g (%v)", r, err)
	}
	r, _ = Pearson([]float64{1, 2, 3}, []float64{6, 4, 2})
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative r = %g", r)
	}
	r, _ = Pearson([]float64{1, 2, 3}, []float64{5, 5, 5})
	if r != 0 {
		t.Errorf("constant sample r = %g", r)
	}
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 5000)
	y := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Errorf("independent samples r = %g", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Monotone nonlinear relation: Spearman = 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	rs, err := Spearman(x, y)
	if err != nil || math.Abs(rs-1) > 1e-12 {
		t.Errorf("Spearman = %g (%v)", rs, err)
	}
	rp, _ := Pearson(x, y)
	if rp >= 1 {
		t.Errorf("Pearson = %g, expected < 1 for nonlinear", rp)
	}
}

func TestSpearmanTies(t *testing.T) {
	rs, err := Spearman([]float64{1, 1, 2, 2}, []float64{3, 3, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs-1) > 1e-12 {
		t.Errorf("tied monotone Spearman = %g", rs)
	}
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v", r)
		}
	}
}

func TestChiSquare2x2(t *testing.T) {
	if _, _, err := ChiSquare2x2(-1, 0, 0, 0); err == nil {
		t.Error("negative cell not rejected")
	}
	// Strong association: should be significant.
	chi2, p, err := ChiSquare2x2(90, 10, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 < 50 || p > 1e-6 {
		t.Errorf("strong association chi2=%g p=%g", chi2, p)
	}
	// No association: chi2 ≈ 0, p ≈ 1.
	chi2, p, _ = ChiSquare2x2(50, 50, 50, 50)
	if chi2 > 0.1 || p < 0.5 {
		t.Errorf("null association chi2=%g p=%g", chi2, p)
	}
	// Degenerate margins.
	chi2, p, _ = ChiSquare2x2(0, 0, 10, 10)
	if chi2 != 0 || p != 1 {
		t.Errorf("degenerate table chi2=%g p=%g", chi2, p)
	}
}
