package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPowerLawAlphaRecovers(t *testing.T) {
	// Sample from a bounded Zipf with known exponent and check the MLE
	// lands near it.
	for _, s := range []float64{1.8, 2.5} {
		z, err := NewBoundedZipf(s, 100000)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(s * 100)))
		sample := make([]float64, 30000)
		for i := range sample {
			sample[i] = float64(z.Sample(rng))
		}
		alpha, n, err := PowerLawAlpha(sample, 2)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("empty tail")
		}
		if math.Abs(alpha-s) > 0.25 {
			t.Errorf("alpha = %.3f, want ≈%.1f", alpha, s)
		}
	}
}

func TestPowerLawAlphaErrors(t *testing.T) {
	if _, _, err := PowerLawAlpha([]float64{1, 2, 3}, 0.4); err == nil {
		t.Error("xmin <= 0.5 accepted")
	}
	if _, _, err := PowerLawAlpha([]float64{1, 1, 1}, 5); err == nil {
		t.Error("empty tail accepted")
	}
	if _, _, err := PowerLawAlpha(nil, 2); err == nil {
		t.Error("empty sample accepted")
	}
}
