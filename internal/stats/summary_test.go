package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Median != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	// Population sd is 2; sample sd = sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", s.StdDev)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("empty median = %g", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(s, 50); p != 5 {
		t.Errorf("P50 = %g, want 5", p)
	}
	if p := Percentile(s, 90); p != 9 {
		t.Errorf("P90 = %g, want 9", p)
	}
	if p := Percentile(s, 0); p != 1 {
		t.Errorf("P0 = %g, want 1", p)
	}
	if p := Percentile(s, 100); p != 10 {
		t.Errorf("P100 = %g, want 10", p)
	}
}

func TestVarianceSmall(t *testing.T) {
	if v := Variance([]float64{5}); v != 0 {
		t.Errorf("single-element variance = %g", v)
	}
	if v := Variance([]float64{1, 3}); v != 2 {
		t.Errorf("Variance([1,3]) = %g, want 2", v)
	}
}

// Property: mean is between min and max; median likewise.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				sample = append(sample, v)
			}
		}
		if len(sample) == 0 {
			return true
		}
		s := Summarize(sample)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min && s.Median <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting the sample shifts mean and median by the same amount.
func TestShiftInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		s := make([]float64, n)
		shifted := make([]float64, n)
		shift := rng.NormFloat64() * 100
		for i := range s {
			s[i] = rng.NormFloat64()
			shifted[i] = s[i] + shift
		}
		if !almostEqual(Mean(shifted), Mean(s)+shift, 1e-9) {
			t.Fatalf("mean not shift-invariant")
		}
		if !almostEqual(Median(shifted), Median(s)+shift, 1e-9) {
			t.Fatalf("median not shift-invariant")
		}
		if !almostEqual(StdDev(shifted), StdDev(s), 1e-9) {
			t.Fatalf("sd not shift-invariant")
		}
	}
}

func TestFloatsAndMedianInt(t *testing.T) {
	f := Floats([]int{1, 2, 3})
	if len(f) != 3 || f[2] != 3 {
		t.Errorf("Floats = %v", f)
	}
	if m := MedianInt([]int{1, 2, 3, 100}); m != 2.5 {
		t.Errorf("MedianInt = %g", m)
	}
}
