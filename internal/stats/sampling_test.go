package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSamplePairsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if err := SamplePairs(rng, 1, 10, func(i, j int) {}); err == nil {
		t.Fatal("expected error for population of 1")
	}
}

func TestSamplePairsNeverEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	count := 0
	err := SamplePairs(rng, 5, 10000, func(i, j int) {
		count++
		if i == j {
			t.Fatalf("sampled identical pair (%d,%d)", i, j)
		}
		if i < 0 || i >= 5 || j < 0 || j >= 5 {
			t.Fatalf("pair out of range (%d,%d)", i, j)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10000 {
		t.Fatalf("callback invoked %d times", count)
	}
}

func TestSamplePairsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const pop, n = 4, 120000
	counts := map[[2]int]int{}
	_ = SamplePairs(rng, pop, n, func(i, j int) { counts[[2]int{i, j}]++ })
	// 12 ordered pairs; each should get ~n/12 draws.
	want := float64(n) / 12
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("pair %v count %d deviates from %g", pair, c, want)
		}
	}
	if len(counts) != 12 {
		t.Errorf("observed %d distinct pairs, want 12", len(counts))
	}
}

func TestReservoirSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := ReservoirSample(rng, 3, 10)
	if len(got) != 3 {
		t.Fatalf("k>n should return all: %v", got)
	}
	sample := ReservoirSample(rng, 1000, 50)
	if len(sample) != 50 {
		t.Fatalf("len = %d", len(sample))
	}
	seen := map[int]bool{}
	for _, v := range sample {
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
}

func TestReservoirSampleUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hits := make([]int, 10)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		for _, idx := range ReservoirSample(rng, 10, 3) {
			hits[idx]++
		}
	}
	want := float64(trials) * 3 / 10
	for i, h := range hits {
		if math.Abs(float64(h)-want) > want*0.08 {
			t.Errorf("index %d hit %d times, want ≈%g", i, h, want)
		}
	}
}

func TestBootstrap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sample := []float64{1, 2, 3, 4, 5}
	var means []float64
	Bootstrap(rng, sample, 200, func(rs []float64) {
		means = append(means, Mean(rs))
	})
	if len(means) != 200 {
		t.Fatalf("got %d resamples", len(means))
	}
	m := Mean(means)
	if m < 2 || m > 4 {
		t.Errorf("bootstrap mean of means = %g", m)
	}
	// No-ops:
	Bootstrap(rng, nil, 5, func([]float64) { t.Fatal("called for empty sample") })
	Bootstrap(rng, sample, 0, func([]float64) { t.Fatal("called for zero iterations") })
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(rng, xs)
	seen := make([]bool, 8)
	for _, v := range xs {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[v] = true
	}
}

func TestBoundedZipfErrors(t *testing.T) {
	if _, err := NewBoundedZipf(1.5, 0); err == nil {
		t.Error("expected error for max=0")
	}
	if _, err := NewBoundedZipf(0, 10); err == nil {
		t.Error("expected error for s=0")
	}
}

func TestBoundedZipfShape(t *testing.T) {
	z, err := NewBoundedZipf(2.0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Sample(rng)
		if v < 1 || v > 1000 {
			t.Fatalf("sample out of range: %d", v)
		}
		counts[v]++
	}
	// P(1)/P(2) should be ~4 for s=2.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 3.4 || ratio > 4.6 {
		t.Errorf("P(1)/P(2) = %g, want ≈4", ratio)
	}
	// Empirical mean should match the exact mean.
	var sum float64
	for v, c := range counts {
		sum += float64(v) * float64(c)
	}
	if got, want := sum/n, z.Mean(); math.Abs(got-want) > 0.1 {
		t.Errorf("empirical mean %g vs exact %g", got, want)
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("expected error for no weights")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("expected error for all-zero weights")
	}
	if _, err := NewAlias([]float64{-1, 2}); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := NewAlias([]float64{math.NaN()}); err == nil {
		t.Error("expected error for NaN weight")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > want*0.05 {
			t.Errorf("index %d drawn %d times, want ≈%g", i, counts[i], want)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50000; i++ {
		v := a.Sample(rng)
		if v == 0 || v == 2 {
			t.Fatalf("drew zero-weight index %d", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		if v := LogNormal(rng, 2, 1.5); v <= 0 {
			t.Fatalf("non-positive lognormal draw %g", v)
		}
	}
}
