package stats

import (
	"fmt"
	"math/rand"
)

// SamplePairs draws n i.i.d. ordered pairs (i, j), i != j, uniformly from
// {0..pop-1}^2, calling f for each. This is the sampling scheme the paper
// uses to estimate the global shared-investment-size CDF from 800,000
// investor pairs. It returns an error when pop < 2.
func SamplePairs(rng *rand.Rand, pop, n int, f func(i, j int)) error {
	if pop < 2 {
		return fmt.Errorf("stats: need population >= 2 to sample pairs, got %d", pop)
	}
	for k := 0; k < n; k++ {
		i := rng.Intn(pop)
		j := rng.Intn(pop - 1)
		if j >= i {
			j++
		}
		f(i, j)
	}
	return nil
}

// ReservoirSample returns k items drawn uniformly without replacement from
// a stream of length n presented through at(idx). If k >= n it returns all
// indices. The result holds indices into the stream.
func ReservoirSample(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = i
		}
	}
	return out
}

// Bootstrap resamples the sample with replacement n times, passing each
// resampled slice (reused between calls — copy it if retained) to f.
func Bootstrap(rng *rand.Rand, sample []float64, n int, f func(resample []float64)) {
	if len(sample) == 0 || n <= 0 {
		return
	}
	buf := make([]float64, len(sample))
	for it := 0; it < n; it++ {
		for i := range buf {
			buf[i] = sample[rng.Intn(len(sample))]
		}
		f(buf)
	}
}

// Shuffle permutes the ints in place using the Fisher–Yates shuffle.
func Shuffle(rng *rand.Rand, xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
