package stats

import (
	"fmt"
	"math/rand"
)

// SamplePairs draws n i.i.d. ordered pairs (i, j), i != j, uniformly from
// {0..pop-1}^2, calling f for each. This is the sampling scheme the paper
// uses to estimate the global shared-investment-size CDF from 800,000
// investor pairs. It returns an error when pop < 2.
func SamplePairs(rng *rand.Rand, pop, n int, f func(i, j int)) error {
	if pop < 2 {
		return fmt.Errorf("stats: need population >= 2 to sample pairs, got %d", pop)
	}
	for k := 0; k < n; k++ {
		i := rng.Intn(pop)
		j := rng.Intn(pop - 1)
		if j >= i {
			j++
		}
		f(i, j)
	}
	return nil
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche mix
// turning a counter into a high-quality 64-bit value. Used for the
// counter-based pair stream, where draw k must be computable without
// drawing 0..k-1 first.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PairAt returns the k-th ordered pair (i, j), i != j, of the i.i.d.
// uniform pair stream identified by seed. Unlike SamplePairs the stream
// is counter-based: any index is addressable in O(1) independent of the
// others, so parallel workers can evaluate disjoint index ranges and
// produce exactly the stream a serial loop would. pop must be >= 2.
func PairAt(seed int64, k, pop int) (i, j int) {
	h := splitmix64(uint64(seed) ^ splitmix64(uint64(k)))
	i = int(h % uint64(pop))
	j = int(splitmix64(h) % uint64(pop-1))
	if j >= i {
		j++
	}
	return i, j
}

// ReservoirSample returns k items drawn uniformly without replacement from
// a stream of length n presented through at(idx). If k >= n it returns all
// indices. The result holds indices into the stream.
func ReservoirSample(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = i
		}
	}
	return out
}

// Bootstrap resamples the sample with replacement n times, passing each
// resampled slice (reused between calls — copy it if retained) to f.
func Bootstrap(rng *rand.Rand, sample []float64, n int, f func(resample []float64)) {
	if len(sample) == 0 || n <= 0 {
		return
	}
	buf := make([]float64, len(sample))
	for it := 0; it < n; it++ {
		for i := range buf {
			buf[i] = sample[rng.Intn(len(sample))]
		}
		f(buf)
	}
}

// Shuffle permutes the ints in place using the Fisher–Yates shuffle.
func Shuffle(rng *rand.Rand, xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
