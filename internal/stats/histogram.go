package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binned density estimate over [Lo, Hi). Values
// outside the range are clamped into the edge bins, so the histogram always
// accounts for the whole sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with the given number of equal-width bins
// over [lo, hi). It returns an error for a non-positive bin count or an
// empty range.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs bins > 0, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%g, %g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Counts[h.binOf(x)]++
	h.total++
}

// AddAll records every observation in the sample.
func (h *Histogram) AddAll(sample []float64) {
	for _, x := range sample {
		h.Add(x)
	}
}

func (h *Histogram) binOf(x float64) int {
	if x < h.Lo {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	idx := int((x - h.Lo) / w)
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	return idx
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized PDF estimate: bin probabilities divided by
// bin width, so the curve integrates to 1. An empty histogram returns all
// zeros.
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.total) * w)
	}
	return d
}

// Proportions returns each bin's share of the total mass.
func (h *Histogram) Proportions() []float64 {
	p := make([]float64, len(h.Counts))
	if h.total == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.total)
	}
	return p
}

// FreedmanDiaconisBins suggests a bin count for the sample using the
// Freedman–Diaconis rule, clamped to [1, maxBins].
func FreedmanDiaconisBins(sample []float64, maxBins int) int {
	if len(sample) < 2 || maxBins < 1 {
		return 1
	}
	iqr := Percentile(sample, 75) - Percentile(sample, 25)
	if iqr <= 0 {
		return 1
	}
	width := 2 * iqr / math.Cbrt(float64(len(sample)))
	lo, hi := sample[0], sample[0]
	for _, v := range sample {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo || width <= 0 {
		return 1
	}
	bins := int(math.Ceil((hi - lo) / width))
	if bins < 1 {
		bins = 1
	}
	if bins > maxBins {
		bins = maxBins
	}
	return bins
}
