package stats

import (
	"errors"
	"math"
)

// PowerLawAlpha estimates the exponent of a discrete power law
// P(x) ∝ x^(-alpha) for x >= xmin, using the Clauset–Shalizi–Newman
// continuous-approximation MLE
//
//	alpha ≈ 1 + n / Σ ln(x_i / (xmin - 1/2))
//
// It quantifies the "long-tailed distribution" claim of Figure 3: the
// investments-per-investor tail fits a power law with alpha ≈ 2-3.
// Values below xmin are ignored; an error is returned if fewer than two
// observations remain.
func PowerLawAlpha(sample []float64, xmin float64) (alpha float64, tailN int, err error) {
	if xmin <= 0.5 {
		return 0, 0, errors.New("stats: power-law xmin must exceed 0.5")
	}
	var sum float64
	for _, x := range sample {
		if x < xmin {
			continue
		}
		tailN++
		sum += math.Log(x / (xmin - 0.5))
	}
	if tailN < 2 || sum <= 0 {
		return 0, tailN, errors.New("stats: not enough tail mass for power-law fit")
	}
	return 1 + float64(tailN)/sum, tailN, nil
}
