package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewECDFErrors(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("expected error for empty sample")
	}
	if _, err := NewECDF([]float64{1, math.NaN()}); err == nil {
		t.Fatal("expected error for NaN sample")
	}
}

func TestECDFEval(t *testing.T) {
	e := MustECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); got != c.want {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	MustECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestECDFQuantile(t *testing.T) {
	e := MustECDF([]float64{10, 20, 30, 40})
	if got := e.Quantile(0.5); got != 20 {
		t.Errorf("Quantile(0.5) = %g, want 20", got)
	}
	if got := e.Quantile(0.75); got != 30 {
		t.Errorf("Quantile(0.75) = %g, want 30", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %g, want 10", got)
	}
	if got := e.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %g, want 40", got)
	}
}

func TestECDFPoints(t *testing.T) {
	e := MustECDF([]float64{1, 1, 2, 3, 3, 3})
	xs, ys := e.Points()
	wantX := []float64{1, 2, 3}
	wantY := []float64{2.0 / 6, 3.0 / 6, 1}
	if len(xs) != len(wantX) {
		t.Fatalf("got %d points, want %d", len(xs), len(wantX))
	}
	for i := range xs {
		if xs[i] != wantX[i] || math.Abs(ys[i]-wantY[i]) > 1e-12 {
			t.Errorf("point %d = (%g,%g), want (%g,%g)", i, xs[i], ys[i], wantX[i], wantY[i])
		}
	}
}

// Property: ECDF is monotone nondecreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, v)
			}
		}
		if len(sample) == 0 {
			return true
		}
		e := MustECDF(sample)
		sort.Float64s(probes)
		prev := 0.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			y := e.Eval(x)
			if y < prev-1e-15 || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and Eval are (weak) inverses: Eval(Quantile(p)) >= p.
func TestECDFQuantileInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64() * 10
		}
		e := MustECDF(sample)
		for k := 0; k < 20; k++ {
			p := rng.Float64()
			if got := e.Eval(e.Quantile(p)); got < p {
				t.Fatalf("Eval(Quantile(%g)) = %g < p", p, got)
			}
		}
	}
}

func TestSupDistance(t *testing.T) {
	a := MustECDF([]float64{1, 2, 3})
	if d := SupDistance(a, a); d != 0 {
		t.Errorf("self distance = %g, want 0", d)
	}
	b := MustECDF([]float64{10, 20, 30})
	if d := SupDistance(a, b); d != 1 {
		t.Errorf("disjoint distance = %g, want 1", d)
	}
	c := MustECDF([]float64{1, 2, 30})
	d := SupDistance(a, c)
	if math.Abs(d-1.0/3) > 1e-12 {
		t.Errorf("distance = %g, want 1/3", d)
	}
}

func TestSupDistanceSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		mk := func() *ECDF {
			n := 1 + rng.Intn(40)
			s := make([]float64, n)
			for i := range s {
				s[i] = rng.NormFloat64()
			}
			return MustECDF(s)
		}
		a, b := mk(), mk()
		if d1, d2 := SupDistance(a, b), SupDistance(b, a); math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("asymmetric: %g vs %g", d1, d2)
		}
	}
}

func TestDKWEpsilonPaperFigure(t *testing.T) {
	// The paper: n = 800,000 pairs, 99% confidence, eps <= 0.0196.
	// DKW gives sqrt(ln(200)/(1.6e6)) ≈ 0.00182 — comfortably within the
	// paper's claimed 0.0196 band.
	eps, err := DKWEpsilon(800000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if eps > 0.0196 {
		t.Errorf("DKW eps = %g, paper claims <= 0.0196", eps)
	}
}

func TestDKWEpsilonErrors(t *testing.T) {
	if _, err := DKWEpsilon(0, 0.99); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := DKWEpsilon(10, 1.5); err == nil {
		t.Error("expected error for confidence > 1")
	}
}

func TestDKWSampleSizeRoundTrip(t *testing.T) {
	n, err := DKWSampleSize(0.0196, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := DKWEpsilon(n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if eps > 0.0196 {
		t.Errorf("sample size %d gives eps %g > 0.0196", n, eps)
	}
	// One fewer sample must not satisfy the band.
	eps2, err := DKWEpsilon(n-1, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if eps2 <= 0.0196 {
		t.Errorf("n-1=%d already satisfies eps band (%g)", n-1, eps2)
	}
}

func TestDKWSampleSizeErrors(t *testing.T) {
	if _, err := DKWSampleSize(0, 0.99); err == nil {
		t.Error("expected error for eps=0")
	}
	if _, err := DKWSampleSize(0.01, 0); err == nil {
		t.Error("expected error for confidence=0")
	}
}

// Property: ECDF converges (Glivenko–Cantelli, checked loosely): for a large
// uniform sample, sup distance to the true CDF is within the 99.9% DKW band.
func TestECDFGlivenkoCantelli(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 20000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = rng.Float64()
	}
	e := MustECDF(sample)
	eps, _ := DKWEpsilon(n, 0.999)
	var sup float64
	for x := 0.0; x <= 1.0; x += 0.001 {
		d := math.Abs(e.Eval(x) - x)
		if d > sup {
			sup = d
		}
	}
	if sup > eps {
		t.Errorf("sup distance %g exceeds DKW band %g", sup, eps)
	}
}
