package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("expected error for empty range")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("expected error for inverted range")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1.9, 2, 9.9, 10, 11, -5})
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10); 10, 11 clamp into last, -5 into first.
	want := []int{3, 1, 0, 0, 3}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h, _ := NewHistogram(-3, 3, 30)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Add(rng.NormFloat64())
	}
	var integral float64
	for _, d := range h.Density() {
		integral += d * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integrates to %g", integral)
	}
	var mass float64
	for _, p := range h.Proportions() {
		mass += p
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("proportions sum to %g", mass)
	}
}

func TestHistogramEmptyDensity(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	for _, d := range h.Density() {
		if d != 0 {
			t.Fatal("empty histogram density not zero")
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %g, want 1", c)
	}
	if c := h.BinCenter(4); c != 9 {
		t.Errorf("BinCenter(4) = %g, want 9", c)
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	bins := FreedmanDiaconisBins(sample, 200)
	if bins < 10 || bins > 200 {
		t.Errorf("FD bins = %d, expected a moderate count", bins)
	}
	if b := FreedmanDiaconisBins([]float64{1}, 100); b != 1 {
		t.Errorf("degenerate FD bins = %d", b)
	}
	if b := FreedmanDiaconisBins([]float64{5, 5, 5, 5}, 100); b != 1 {
		t.Errorf("constant FD bins = %d", b)
	}
}

func TestKDEBasic(t *testing.T) {
	if _, err := NewKDE(nil, 0); err == nil {
		t.Fatal("expected error for empty KDE sample")
	}
	rng := rand.New(rand.NewSource(3))
	sample := make([]float64, 4000)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	k, err := NewKDE(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Fatal("non-positive bandwidth")
	}
	// Density at the mode should exceed density in the tail.
	if k.Eval(0) <= k.Eval(3) {
		t.Errorf("Eval(0)=%g not above Eval(3)=%g", k.Eval(0), k.Eval(3))
	}
	// Should roughly match the standard normal density at 0 (~0.3989).
	if d := k.Eval(0); d < 0.3 || d > 0.5 {
		t.Errorf("Eval(0) = %g, want ≈0.399", d)
	}
}

func TestKDEGridIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = rng.NormFloat64() * 2
	}
	k, _ := NewKDE(sample, 0)
	xs, ys := k.Grid(400)
	var integral float64
	for i := 1; i < len(xs); i++ {
		integral += (ys[i] + ys[i-1]) / 2 * (xs[i] - xs[i-1])
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE grid integrates to %g", integral)
	}
}

func TestKDEDegenerateSample(t *testing.T) {
	k, err := NewKDE([]float64{5, 5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(k.Eval(5), 0) || math.IsNaN(k.Eval(5)) {
		t.Error("degenerate KDE not finite at the atom")
	}
}
