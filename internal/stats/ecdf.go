package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
// Evaluation is O(log n). The zero value is not usable; construct with
// NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the sample. The input slice is not
// modified. NewECDF returns an error when the sample is empty or contains
// NaN values.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, errors.New("stats: empty sample for ECDF")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	for _, v := range s {
		if math.IsNaN(v) {
			return nil, errors.New("stats: NaN in sample for ECDF")
		}
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// MustECDF is NewECDF that panics on error; intended for samples that are
// statically known to be valid (tests, benchmarks).
func MustECDF(sample []float64) *ECDF {
	e, err := NewECDF(sample)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns Fn(x) = (#{xi <= x}) / n.
func (e *ECDF) Eval(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// need the count of values <= x, i.e. the first index with sorted[i] > x.
	idx := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with Fn(v) >= p, for
// p in (0, 1]. Quantile(0) returns the minimum.
func (e *ECDF) Quantile(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Min and Max return the sample extremes.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns the step-function support points (x, Fn(x)) at each
// distinct sample value, suitable for plotting the CDF curve.
func (e *ECDF) Points() ([]float64, []float64) {
	xs := make([]float64, 0, len(e.sorted))
	ys := make([]float64, 0, len(e.sorted))
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); i++ {
		// Emit one point per distinct value, at its last occurrence.
		if i+1 < len(e.sorted) && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		ys = append(ys, float64(i+1)/n)
	}
	return xs, ys
}

// SupDistance returns the Kolmogorov–Smirnov statistic
// sup_x |Fn(x) - Gm(x)| between two empirical CDFs, evaluated exactly over
// the merged support.
func SupDistance(f, g *ECDF) float64 {
	var sup float64
	i, j := 0, 0
	for i < len(f.sorted) || j < len(g.sorted) {
		var x float64
		switch {
		case i >= len(f.sorted):
			x = g.sorted[j]
		case j >= len(g.sorted):
			x = f.sorted[i]
		case f.sorted[i] <= g.sorted[j]:
			x = f.sorted[i]
		default:
			x = g.sorted[j]
		}
		for i < len(f.sorted) && f.sorted[i] <= x {
			i++
		}
		for j < len(g.sorted) && g.sorted[j] <= x {
			j++
		}
		d := math.Abs(float64(i)/float64(len(f.sorted)) - float64(j)/float64(len(g.sorted)))
		if d > sup {
			sup = d
		}
	}
	return sup
}

// DKWEpsilon returns the half-width eps of the Dvoretzky–Kiefer–Wolfowitz
// confidence band: with probability at least confidence,
// sup_x |Fn(x) - F(x)| <= eps for a sample of size n.
//
// The paper invokes the Glivenko–Cantelli theorem to claim that with
// n = 800,000 i.i.d. pairs, P(||Fn - F||inf <= 0.0196) >= 99%; the DKW
// inequality is the quantitative form of that statement:
// eps = sqrt(ln(2/alpha) / (2n)).
func DKWEpsilon(n int, confidence float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: DKW requires n > 0, got %d", n)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: DKW confidence must be in (0,1), got %g", confidence)
	}
	alpha := 1 - confidence
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(n))), nil
}

// DKWSampleSize returns the smallest sample size n such that the DKW band
// half-width at the given confidence is at most eps.
func DKWSampleSize(eps, confidence float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("stats: DKW eps must be in (0,1), got %g", eps)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: DKW confidence must be in (0,1), got %g", confidence)
	}
	alpha := 1 - confidence
	n := math.Log(2/alpha) / (2 * eps * eps)
	return int(math.Ceil(n)), nil
}
