// Package stats provides the statistical primitives used throughout the
// crowdscope analyses: empirical CDFs with Glivenko–Cantelli / DKW
// confidence bands (Figure 4 of the paper), histogram and kernel density
// estimates of PDFs (Figure 5), summary statistics, quantiles, bootstrap
// and pair sampling, and the heavy-tailed samplers that drive the
// synthetic-ecosystem generator.
//
// All estimators are deterministic given their inputs; every sampler takes
// an explicit *rand.Rand so experiments are reproducible.
package stats
