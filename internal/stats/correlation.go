package stats

import (
	"errors"
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns an error for mismatched or too-short inputs, and 0
// when either sample is constant.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: Pearson needs equal-length samples")
	}
	if len(x) < 2 {
		return 0, errors.New("stats: Pearson needs at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation (Pearson on ranks, with
// average ranks for ties).
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: Spearman needs equal-length samples")
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// ChiSquare2x2 computes the chi-square statistic (with Yates continuity
// correction) and an approximate p-value for a 2×2 contingency table
//
//	| a b |
//	| c d |
//
// — e.g. social-presence × funded. Used to check that the Figure 6
// differences are significant rather than sampling noise.
func ChiSquare2x2(a, b, c, d float64) (chi2, p float64, err error) {
	n := a + b + c + d
	if n <= 0 || a < 0 || b < 0 || c < 0 || d < 0 {
		return 0, 1, errors.New("stats: invalid contingency table")
	}
	r1, r2 := a+b, c+d
	c1, c2 := a+c, b+d
	if r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0 {
		return 0, 1, nil
	}
	num := math.Abs(a*d-b*c) - n/2
	if num < 0 {
		num = 0
	}
	chi2 = n * num * num / (r1 * r2 * c1 * c2)
	// p-value for 1 degree of freedom: P(X > chi2) = erfc(sqrt(chi2/2)).
	p = math.Erfc(math.Sqrt(chi2 / 2))
	return chi2, p, nil
}
