package stats

import (
	"errors"
	"math"
	"sort"
)

// KDE is a one-dimensional Gaussian kernel density estimator, used to draw
// the smooth PDF over per-community percentages in Figure 5.
type KDE struct {
	sample    []float64
	bandwidth float64
}

// NewKDE builds a Gaussian KDE over the sample. If bandwidth <= 0 the
// Silverman rule-of-thumb bandwidth is used. The sample is copied.
func NewKDE(sample []float64, bandwidth float64) (*KDE, error) {
	if len(sample) == 0 {
		return nil, errors.New("stats: empty sample for KDE")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if bandwidth <= 0 {
		bandwidth = silvermanBandwidth(s)
	}
	if bandwidth <= 0 {
		// Degenerate sample (all values equal): fall back to a tiny positive
		// bandwidth so evaluation stays finite.
		bandwidth = 1e-9
	}
	return &KDE{sample: s, bandwidth: bandwidth}, nil
}

// silvermanBandwidth implements h = 0.9 * min(sd, IQR/1.34) * n^(-1/5).
func silvermanBandwidth(sorted []float64) float64 {
	sd := StdDev(sorted)
	iqr := Percentile(sorted, 75) - Percentile(sorted, 25)
	spread := sd
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread <= 0 {
		spread = sd
	}
	return 0.9 * spread * math.Pow(float64(len(sorted)), -0.2)
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Eval returns the estimated density at x.
func (k *KDE) Eval(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, xi := range k.sample {
		u := (x - xi) / k.bandwidth
		sum += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return sum / (float64(len(k.sample)) * k.bandwidth)
}

// Grid evaluates the density at n evenly spaced points spanning the sample
// range padded by three bandwidths on each side, returning xs and densities.
func (k *KDE) Grid(n int) ([]float64, []float64) {
	if n < 2 {
		n = 2
	}
	lo := k.sample[0] - 3*k.bandwidth
	hi := k.sample[len(k.sample)-1] + 3*k.bandwidth
	xs := make([]float64, n)
	ys := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ys[i] = k.Eval(xs[i])
	}
	return xs, ys
}
