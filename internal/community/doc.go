// Package community implements the community-detection algorithms the
// paper uses and proposes:
//
//   - CoDA (Communities through Directed Affiliations, Yang–McAuley–
//     Leskovec, WSDM'14), the method the paper runs via SNAP. CoDA fits an
//     affiliation model where every investor has an outgoing-membership
//     vector F and every company an incoming-membership vector H, with
//     edge probability 1 − exp(−F_u·H_v); communities are the nodes whose
//     membership weight clears the background threshold. It handles
//     directed 2-mode (bipartite) networks natively, which is why the
//     paper selected it.
//   - BigCLAM, the undirected ancestor, run on the one-mode projection —
//     a baseline showing what is lost by projecting away the bipartite
//     structure.
//   - Weighted label propagation and Louvain modularity maximization on
//     the projection, the "standard algorithms for densely connected
//     undirected graphs" the paper contrasts CoDA against.
//   - A degree-corrected stochastic block model with spectral
//     initialization and greedy likelihood refinement — the Section 7
//     future-work method, extended to directed bipartite graphs.
//
// All algorithms operate on graph.Bipartite and return Assignment values;
// every stochastic step takes an explicit seed.
package community
