package community

import (
	"sort"

	"crowdscope/internal/graph"
)

// Assignment is the output of a detector over a bipartite investor→company
// graph: per community, the investor members (left indices) and, when the
// algorithm models them, the company members (right indices). Communities
// may overlap; members within a community are sorted and unique.
type Assignment struct {
	// Investors[k] lists the left-node indices in community k.
	Investors [][]int32
	// Companies[k] lists the right-node indices in community k (empty for
	// one-mode algorithms that only cluster investors).
	Companies [][]int32
}

// NumCommunities returns the number of communities.
func (a *Assignment) NumCommunities() int { return len(a.Investors) }

// MeanInvestorSize returns the average investor-membership size (the
// paper reports 190.2 for its 96 CoDA communities).
func (a *Assignment) MeanInvestorSize() float64 {
	if len(a.Investors) == 0 {
		return 0
	}
	var sum int
	for _, m := range a.Investors {
		sum += len(m)
	}
	return float64(sum) / float64(len(a.Investors))
}

// normalize sorts members, removes duplicates and drops empty
// communities, canonicalizing detector output.
func (a *Assignment) normalize() {
	var inv, comp [][]int32
	for k := range a.Investors {
		m := uniqSorted(a.Investors[k])
		var c []int32
		if k < len(a.Companies) {
			c = uniqSorted(a.Companies[k])
		}
		if len(m) == 0 {
			continue
		}
		inv = append(inv, m)
		comp = append(comp, c)
	}
	a.Investors = inv
	a.Companies = comp
}

func uniqSorted(xs []int32) []int32 {
	if len(xs) == 0 {
		return nil
	}
	s := append([]int32(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Detector is the common interface of all community-detection algorithms,
// used by the comparison experiments.
type Detector interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Detect clusters the bipartite graph's investors.
	Detect(b graph.BipartiteView) (*Assignment, error)
}

// RecoveryScore compares detected investor communities against planted
// ground truth with the standard average-F1 measure: for each truth
// community take the best-matching detected community's F1, and vice
// versa, then average the two directions.
func RecoveryScore(truth, detected [][]int32) float64 {
	if len(truth) == 0 || len(detected) == 0 {
		return 0
	}
	detSets := make([]map[int32]bool, len(detected))
	for i, d := range detected {
		m := make(map[int32]bool, len(d))
		for _, v := range d {
			m[v] = true
		}
		detSets[i] = m
	}
	truthSets := make([]map[int32]bool, len(truth))
	for i, d := range truth {
		m := make(map[int32]bool, len(d))
		for _, v := range d {
			m[v] = true
		}
		truthSets[i] = m
	}
	f1 := func(a []int32, bset map[int32]bool, blen int) float64 {
		if len(a) == 0 || blen == 0 {
			return 0
		}
		var inter int
		for _, v := range a {
			if bset[v] {
				inter++
			}
		}
		if inter == 0 {
			return 0
		}
		p := float64(inter) / float64(len(a))
		r := float64(inter) / float64(blen)
		return 2 * p * r / (p + r)
	}
	var fwd float64
	for i, tc := range truth {
		best := 0.0
		for j := range detected {
			if s := f1(tc, detSets[j], len(detected[j])); s > best {
				best = s
			}
		}
		_ = i
		fwd += best
	}
	fwd /= float64(len(truth))
	var bwd float64
	for j, dc := range detected {
		best := 0.0
		for i := range truth {
			if s := f1(dc, truthSets[i], len(truth[i])); s > best {
				best = s
			}
		}
		_ = j
		bwd += best
	}
	bwd /= float64(len(detected))
	return (fwd + bwd) / 2
}
