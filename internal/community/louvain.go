package community

import (
	"math/rand"

	"crowdscope/internal/graph"
)

// Louvain maximizes weighted modularity on the one-mode projection of the
// investor graph with the classic two-phase Louvain method (local moves,
// then graph aggregation, repeated until modularity stops improving). A
// disjoint-communities baseline for CoDA.
type Louvain struct {
	MinShared  int // projection threshold; default 1
	MaxLevels  int // default 10
	Seed       int64
	MinMembers int // default 3
}

// Name implements Detector.
func (l *Louvain) Name() string { return "louvain" }

// louvainGraph is a weighted undirected multigraph with self-loops used by
// the aggregation phases.
type louvainGraph struct {
	n     int
	adj   []map[int]float64 // adj[u][v] = weight (v != u)
	loops []float64         // self-loop weight (doubled-count convention)
	total float64           // sum of all edge weights (each edge once)
}

func (g *louvainGraph) degree(u int) float64 {
	d := g.loops[u] * 2
	for _, w := range g.adj[u] {
		d += w
	}
	return d
}

// Detect implements Detector.
func (l *Louvain) Detect(bp graph.BipartiteView) (*Assignment, error) {
	n := bp.NumLeft()
	if n == 0 {
		return &Assignment{}, nil
	}
	minShared := l.MinShared
	if minShared <= 0 {
		minShared = 1
	}
	maxLevels := l.MaxLevels
	if maxLevels <= 0 {
		maxLevels = 10
	}
	minMembers := l.MinMembers
	if minMembers <= 0 {
		minMembers = 3
	}

	g := &louvainGraph{
		n:     n,
		adj:   make([]map[int]float64, n),
		loops: make([]float64, n),
	}
	for i := range g.adj {
		g.adj[i] = map[int]float64{}
	}
	hasEdge := make([]bool, n)
	for _, e := range graph.ProjectLeft(bp, minShared) {
		g.adj[e.U][int(e.V)] += e.Weight
		g.adj[e.V][int(e.U)] += e.Weight
		g.total += e.Weight
		hasEdge[e.U] = true
		hasEdge[e.V] = true
	}
	if g.total == 0 {
		return &Assignment{}, nil
	}

	rng := rand.New(rand.NewSource(l.Seed))
	// membership[orig] tracks the current community of each original node.
	membership := make([]int, n)
	for i := range membership {
		membership[i] = i
	}

	for level := 0; level < maxLevels; level++ {
		comm, improved := l.onePass(g, rng)
		if !improved {
			break
		}
		// Renumber communities densely.
		renum := map[int]int{}
		for _, c := range comm {
			if _, ok := renum[c]; !ok {
				renum[c] = len(renum)
			}
		}
		for i := range membership {
			membership[i] = renum[comm[membership[i]]]
		}
		if len(renum) == g.n {
			break // no aggregation happened
		}
		g = aggregate(g, comm, renum)
	}

	groups := map[int][]int32{}
	for u := 0; u < n; u++ {
		if !hasEdge[u] {
			continue
		}
		groups[membership[u]] = append(groups[membership[u]], int32(u))
	}
	a := &Assignment{}
	for _, members := range groups {
		if len(members) >= minMembers {
			a.Investors = append(a.Investors, members)
		}
	}
	a.normalize()
	sortCommunities(a)
	return a, nil
}

// onePass runs local moves until no single move improves modularity,
// returning the node→community map and whether anything moved.
func (l *Louvain) onePass(g *louvainGraph, rng *rand.Rand) ([]int, bool) {
	comm := make([]int, g.n)
	commDeg := make([]float64, g.n) // total degree per community
	for i := range comm {
		comm[i] = i
		commDeg[i] = g.degree(i)
	}
	m2 := 2 * g.total
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	improvedEver := false
	for round := 0; round < 20; round++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		moves := 0
		for _, u := range order {
			cu := comm[u]
			du := g.degree(u)
			// Weight from u to each neighboring community.
			wTo := map[int]float64{}
			for v, w := range g.adj[u] {
				wTo[comm[v]] += w
			}
			// Remove u from its community.
			commDeg[cu] -= du
			best, bestGain := cu, 0.0
			baseW := wTo[cu]
			baseGain := baseW - commDeg[cu]*du/m2
			for c, w := range wTo {
				gain := w - commDeg[c]*du/m2
				if gain-baseGain > bestGain+1e-12 {
					best, bestGain = c, gain-baseGain
				}
			}
			comm[u] = best
			commDeg[best] += du
			if best != cu {
				moves++
				improvedEver = true
			}
		}
		if moves == 0 {
			break
		}
	}
	return comm, improvedEver
}

// aggregate collapses communities into super-nodes.
func aggregate(g *louvainGraph, comm []int, renum map[int]int) *louvainGraph {
	n := len(renum)
	ng := &louvainGraph{
		n:     n,
		adj:   make([]map[int]float64, n),
		loops: make([]float64, n),
		total: g.total,
	}
	for i := range ng.adj {
		ng.adj[i] = map[int]float64{}
	}
	for u := 0; u < g.n; u++ {
		cu := renum[comm[u]]
		ng.loops[cu] += g.loops[u]
		for v, w := range g.adj[u] {
			cv := renum[comm[v]]
			if cu == cv {
				// Each undirected edge appears twice in adj; halve into
				// the loop weight.
				ng.loops[cu] += w / 2
			} else {
				ng.adj[cu][cv] += w
			}
		}
	}
	return ng
}
