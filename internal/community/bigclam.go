package community

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crowdscope/internal/graph"
)

// BigCLAM fits the undirected cluster-affiliation model (Yang–Leskovec,
// WSDM'13) to the one-mode projection of the investor graph: investors are
// linked when they co-invested in at least MinShared companies, and
// p(u,v) = 1 − exp(−F_u·F_v). It is the natural baseline for CoDA — what
// the paper's analysis would look like if the bipartite structure were
// projected away first.
type BigCLAM struct {
	K          int
	MinShared  int // projection threshold; default 1
	MaxIter    int
	Tol        float64
	Seed       int64
	MinMembers int
}

// Name implements Detector.
func (b *BigCLAM) Name() string { return "bigclam" }

// Detect implements Detector.
func (b *BigCLAM) Detect(bp graph.BipartiteView) (*Assignment, error) {
	if b.K <= 0 {
		return nil, fmt.Errorf("community: BigCLAM needs K > 0, got %d", b.K)
	}
	n := bp.NumLeft()
	if n == 0 {
		return &Assignment{}, nil
	}
	minShared := b.MinShared
	if minShared <= 0 {
		minShared = 1
	}
	maxIter := b.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	tol := b.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	minMembers := b.MinMembers
	if minMembers <= 0 {
		minMembers = 3
	}
	adj := projectionAdjacency(bp, minShared)
	var edges int
	for _, nb := range adj {
		edges += len(nb)
	}
	edges /= 2
	if edges == 0 {
		return &Assignment{}, nil
	}

	rng := rand.New(rand.NewSource(b.Seed))
	K := b.K
	F := newMatrix(n, K)
	// Seed from high-degree nodes' neighborhoods plus noise scaled so a
	// column's total background mass stays O(1) (see CoDA.seed).
	noise := 2.0 / float64(n)
	for u := range F {
		for k := range F[u] {
			F[u][k] = rng.Float64() * noise
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if len(adj[order[i]]) != len(adj[order[j]]) {
			return len(adj[order[i]]) > len(adj[order[j]])
		}
		return order[i] < order[j]
	})
	claimed := make([]bool, n)
	k := 0
	for _, u := range order {
		if k >= K {
			break
		}
		if claimed[u] {
			continue
		}
		F[u][k] = 1
		claimed[u] = true
		for _, v := range adj[u] {
			F[v][k] = 1
			claimed[v] = true
		}
		k++
	}

	SF := colSums(F, K)
	scratch := newRowScratch(K)
	prevL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		var total float64
		for u := 0; u < n; u++ {
			// Exclude self from the non-neighbor sum.
			for j := 0; j < K; j++ {
				SF[j] -= F[u][j]
			}
			total += updateRow(F[u], adj[u], F, SF, scratch)
			for j := 0; j < K; j++ {
				SF[j] += F[u][j]
			}
		}
		if prevL != math.Inf(-1) {
			denom := math.Abs(prevL)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if (total-prevL)/denom < tol && total >= prevL {
				break
			}
		}
		prevL = total
	}

	eps := 2 * float64(edges) / (float64(n) * float64(n-1))
	if eps >= 1 {
		eps = 0.999
	}
	delta := math.Sqrt(-math.Log(1 - eps))
	a := &Assignment{Investors: make([][]int32, K)}
	for u := 0; u < n; u++ {
		for j := 0; j < K; j++ {
			if F[u][j] >= delta {
				a.Investors[j] = append(a.Investors[j], int32(u))
			}
		}
	}
	var inv [][]int32
	for _, m := range a.Investors {
		if len(m) >= minMembers {
			inv = append(inv, m)
		}
	}
	a.Investors = inv
	a.normalize()
	return a, nil
}

// projectionAdjacency converts ProjectLeft edges into adjacency lists over
// left indices (unweighted).
func projectionAdjacency(bp graph.BipartiteView, minShared int) [][]int32 {
	adj := make([][]int32, bp.NumLeft())
	for _, e := range graph.ProjectLeft(bp, minShared) {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}
