package community

import (
	"fmt"
	"math/rand"
	"testing"

	"crowdscope/internal/graph"
)

// plantedGraph builds a bipartite graph with k disjoint planted
// communities: each has m investors and c companies, every member invests
// in each community company with probability dense, plus sparse random
// cross-community noise. Returns the graph and the ground-truth investor
// communities (left indices).
func plantedGraph(k, m, c int, dense, noise float64, seed int64) (*graph.Bipartite, [][]int32) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBipartite(k*m, k*c)
	truth := make([][]int32, k)
	// Pre-create nodes so indices are predictable.
	for i := 0; i < k*m; i++ {
		b.AddLeft(fmt.Sprint("i", i))
	}
	for j := 0; j < k*c; j++ {
		b.AddRight(fmt.Sprint("c", j))
	}
	for g := 0; g < k; g++ {
		for i := 0; i < m; i++ {
			inv := g*m + i
			truth[g] = append(truth[g], int32(inv))
			for j := 0; j < c; j++ {
				if rng.Float64() < dense {
					b.AddEdge(fmt.Sprint("i", inv), fmt.Sprint("c", g*c+j))
				}
			}
			// Noise edges anywhere.
			for t := 0; t < 2; t++ {
				if rng.Float64() < noise {
					b.AddEdge(fmt.Sprint("i", inv), fmt.Sprint("c", rng.Intn(k*c)))
				}
			}
		}
	}
	b.SortAdjacency()
	return b, truth
}

func TestCoDARecoversPlantedCommunities(t *testing.T) {
	b, truth := plantedGraph(4, 12, 8, 0.8, 0.1, 1)
	coda := &CoDA{K: 4, Seed: 1}
	a, err := coda.Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCommunities() < 3 {
		t.Fatalf("CoDA found %d communities, want ≈4", a.NumCommunities())
	}
	score := RecoveryScore(truth, a.Investors)
	if score < 0.7 {
		t.Errorf("CoDA recovery F1 = %.3f, want >= 0.7", score)
	}
	// CoDA also assigns companies.
	var totalCompanies int
	for _, cs := range a.Companies {
		totalCompanies += len(cs)
	}
	if totalCompanies == 0 {
		t.Error("CoDA assigned no companies to communities")
	}
}

func TestCoDAValidation(t *testing.T) {
	if _, err := (&CoDA{}).Detect(graph.NewBipartite(0, 0)); err == nil {
		t.Fatal("K=0 should error")
	}
	// Empty graph: no communities, no error.
	a, err := (&CoDA{K: 3}).Detect(graph.NewBipartite(0, 0))
	if err != nil || a.NumCommunities() != 0 {
		t.Fatalf("empty graph: %v, %d", err, a.NumCommunities())
	}
}

func TestCoDADeterministic(t *testing.T) {
	b, _ := plantedGraph(3, 10, 6, 0.8, 0.1, 2)
	a1, err := (&CoDA{K: 3, Seed: 9}).Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := (&CoDA{K: 3, Seed: 9}).Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	if a1.NumCommunities() != a2.NumCommunities() {
		t.Fatal("CoDA not deterministic in community count")
	}
	for k := range a1.Investors {
		if len(a1.Investors[k]) != len(a2.Investors[k]) {
			t.Fatal("CoDA not deterministic in membership")
		}
		for i := range a1.Investors[k] {
			if a1.Investors[k][i] != a2.Investors[k][i] {
				t.Fatal("CoDA not deterministic in members")
			}
		}
	}
}

func TestCoDAOverlapAllowed(t *testing.T) {
	// Two communities sharing two investors: overlapping membership
	// should be representable (a disjoint method cannot do this).
	b, _ := plantedGraph(2, 10, 8, 0.9, 0, 3)
	// Make investors 0 and 1 also invest in the second community.
	for j := 8; j < 16; j++ {
		b.AddEdge("i0", fmt.Sprint("c", j))
		b.AddEdge("i1", fmt.Sprint("c", j))
	}
	b.SortAdjacency()
	a, err := (&CoDA{K: 2, Seed: 4}).Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCommunities() < 2 {
		t.Skipf("CoDA merged communities (%d found)", a.NumCommunities())
	}
	seen := map[int32]int{}
	for _, comm := range a.Investors {
		for _, u := range comm {
			seen[u]++
		}
	}
	overlapping := 0
	for _, n := range seen {
		if n > 1 {
			overlapping++
		}
	}
	if overlapping == 0 {
		t.Error("expected overlapping members for bridge investors")
	}
}

func TestBigCLAMRecoversPlantedCommunities(t *testing.T) {
	b, truth := plantedGraph(4, 12, 8, 0.8, 0.1, 5)
	a, err := (&BigCLAM{K: 4, Seed: 5}).Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	score := RecoveryScore(truth, a.Investors)
	if score < 0.7 {
		t.Errorf("BigCLAM recovery F1 = %.3f, want >= 0.7", score)
	}
}

func TestBigCLAMValidation(t *testing.T) {
	if _, err := (&BigCLAM{}).Detect(graph.NewBipartite(0, 0)); err == nil {
		t.Fatal("K=0 should error")
	}
}

func TestLabelPropRecoversPlantedCommunities(t *testing.T) {
	b, truth := plantedGraph(4, 12, 8, 0.85, 0.05, 6)
	a, err := (&LabelProp{Seed: 6}).Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	score := RecoveryScore(truth, a.Investors)
	if score < 0.7 {
		t.Errorf("label propagation recovery F1 = %.3f, want >= 0.7", score)
	}
	// Disjoint: no investor in two communities.
	seen := map[int32]bool{}
	for _, comm := range a.Investors {
		for _, u := range comm {
			if seen[u] {
				t.Fatal("label propagation produced overlapping communities")
			}
			seen[u] = true
		}
	}
}

func TestLouvainRecoversPlantedCommunities(t *testing.T) {
	b, truth := plantedGraph(4, 12, 8, 0.85, 0.05, 7)
	a, err := (&Louvain{Seed: 7}).Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	score := RecoveryScore(truth, a.Investors)
	if score < 0.7 {
		t.Errorf("louvain recovery F1 = %.3f, want >= 0.7", score)
	}
}

func TestSBMRecoversPlantedCommunities(t *testing.T) {
	b, truth := plantedGraph(4, 12, 8, 0.85, 0.05, 8)
	a, err := (&SBM{K: 4, Seed: 8}).Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	score := RecoveryScore(truth, a.Investors)
	if score < 0.7 {
		t.Errorf("SBM recovery F1 = %.3f, want >= 0.7", score)
	}
}

func TestSBMValidation(t *testing.T) {
	if _, err := (&SBM{}).Detect(graph.NewBipartite(0, 0)); err == nil {
		t.Fatal("K=0 should error")
	}
}

func TestDetectorsOnEmptyProjection(t *testing.T) {
	// Investors that never co-invest: projection is empty; one-mode
	// detectors must return no communities without failing.
	b := graph.NewBipartite(4, 4)
	for i := 0; i < 4; i++ {
		b.AddEdge(fmt.Sprint("i", i), fmt.Sprint("c", i))
	}
	b.SortAdjacency()
	for _, det := range []Detector{
		&BigCLAM{K: 2, Seed: 1},
		&LabelProp{Seed: 1},
		&Louvain{Seed: 1},
	} {
		a, err := det.Detect(b)
		if err != nil {
			t.Fatalf("%s: %v", det.Name(), err)
		}
		if a.NumCommunities() != 0 {
			t.Errorf("%s found %d communities in an empty projection", det.Name(), a.NumCommunities())
		}
	}
}

func TestRecoveryScore(t *testing.T) {
	truth := [][]int32{{1, 2, 3}, {4, 5, 6}}
	if s := RecoveryScore(truth, truth); s != 1 {
		t.Errorf("perfect recovery = %g", s)
	}
	if s := RecoveryScore(truth, [][]int32{{7, 8, 9}}); s != 0 {
		t.Errorf("disjoint recovery = %g", s)
	}
	if s := RecoveryScore(truth, nil); s != 0 {
		t.Errorf("empty detected = %g", s)
	}
	half := RecoveryScore(truth, [][]int32{{1, 2, 3}})
	if half <= 0.4 || half >= 1 {
		t.Errorf("partial recovery = %g", half)
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := &Assignment{Investors: [][]int32{{3, 1, 1, 2}, {}, {5}}}
	a.normalize()
	// Empty community dropped; duplicates removed; sorted.
	if a.NumCommunities() != 2 {
		t.Fatalf("communities = %d", a.NumCommunities())
	}
	if len(a.Investors[0]) != 3 || a.Investors[0][0] != 1 {
		t.Fatalf("normalized = %v", a.Investors[0])
	}
	if a.MeanInvestorSize() != 2 {
		t.Fatalf("mean size = %g", a.MeanInvestorSize())
	}
	empty := &Assignment{}
	if empty.MeanInvestorSize() != 0 {
		t.Fatal("empty mean size should be 0")
	}
}

func TestDetectorNames(t *testing.T) {
	names := map[string]bool{}
	for _, det := range []Detector{&CoDA{K: 1}, &BigCLAM{K: 1}, &LabelProp{}, &Louvain{}, &SBM{K: 1}} {
		if det.Name() == "" || names[det.Name()] {
			t.Errorf("bad or duplicate detector name %q", det.Name())
		}
		names[det.Name()] = true
	}
}

func TestSelectK(t *testing.T) {
	// Planted graph with 4 clear communities: the CV should prefer K near
	// 4 over gross mis-specifications.
	b, _ := plantedGraph(4, 14, 8, 0.85, 0.03, 9)
	k, aucs, err := SelectK(b, []int{1, 4, 12}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(aucs) != 3 {
		t.Fatalf("aucs = %v", aucs)
	}
	for _, a := range aucs {
		if a < 0 || a > 1 {
			t.Fatalf("AUC out of range: %v", aucs)
		}
	}
	if k == 1 {
		t.Errorf("SelectK chose K=1 (aucs %v)", aucs)
	}
	// K=4's AUC should beat K=1's (more structure captured).
	if aucs[1] <= aucs[0] {
		t.Errorf("K=4 AUC %.3f not above K=1 AUC %.3f", aucs[1], aucs[0])
	}
}

func TestSelectKDegenerate(t *testing.T) {
	if _, _, err := SelectK(graph.NewBipartite(0, 0), nil, 1); err == nil {
		t.Fatal("no candidates accepted")
	}
	// Tiny graph: falls back to the first candidate without error.
	b := graph.NewBipartite(2, 2)
	b.AddEdge("a", "x")
	b.SortAdjacency()
	k, _, err := SelectK(b, []int{3, 5}, 1)
	if err != nil || k != 3 {
		t.Fatalf("fallback k = %d, err %v", k, err)
	}
}
