package community

import (
	"fmt"
	"math"
	"testing"
)

// TestCoDAParallelEquivalence asserts the parallelized block-coordinate
// sweeps are bit-identical to the serial path: the full membership
// matrices F and H (and hence the likelihood trajectory that drives
// convergence) must match exactly between workers=1 and workers=4.
func TestCoDAParallelEquivalence(t *testing.T) {
	b, _ := plantedGraph(4, 14, 9, 0.8, 0.1, 6)
	fit := func(workers int) ([][]float64, [][]float64) {
		c := &CoDA{K: 4, Seed: 11, Workers: workers}
		F, H, err := c.fit(b)
		if err != nil {
			t.Fatal(err)
		}
		return F, H
	}
	F1, H1 := fit(1)
	F4, H4 := fit(4)
	compare := func(name string, a, b [][]float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: row count %d != %d", name, len(a), len(b))
		}
		for i := range a {
			for k := range a[i] {
				if math.Float64bits(a[i][k]) != math.Float64bits(b[i][k]) {
					t.Fatalf("%s[%d][%d]: %v != %v", name, i, k, a[i][k], b[i][k])
				}
			}
		}
	}
	compare("F", F1, F4)
	compare("H", H1, H4)
}

// TestCoDADetectWorkerInvariant checks the full Detect pipeline returns
// identical community assignments for every worker count.
func TestCoDADetectWorkerInvariant(t *testing.T) {
	b, _ := plantedGraph(3, 12, 8, 0.85, 0.05, 8)
	var base *Assignment
	for _, workers := range []int{1, 2, 4} {
		a, err := (&CoDA{K: 3, Seed: 5, Workers: workers}).Detect(b)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = a
			continue
		}
		if a.NumCommunities() != base.NumCommunities() {
			t.Fatalf("workers=%d: %d communities, want %d", workers, a.NumCommunities(), base.NumCommunities())
		}
		for k := range base.Investors {
			got := fmt.Sprint(a.Investors[k])
			want := fmt.Sprint(base.Investors[k])
			if got != want {
				t.Fatalf("workers=%d community %d: %s != %s", workers, k, got, want)
			}
		}
	}
}
