package community

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crowdscope/internal/graph"
)

// SelectK chooses the number of CoDA communities by hold-out link
// prediction — the standard model-selection recipe for affiliation
// models (and the kind of procedure behind the paper's "96 communities"):
// 10% of investment edges are held out, the model is fitted on the rest
// for each candidate K, and the K whose membership scores best separate
// held-out edges from random non-edges (ROC AUC) wins.
//
// It returns the chosen K and the per-candidate AUCs in candidate order.
func SelectK(b graph.BipartiteView, candidates []int, seed int64) (int, []float64, error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("community: SelectK needs candidates")
	}
	nL, nR := b.NumLeft(), b.NumRight()
	if nL < 2 || nR < 2 || b.NumEdges() < 10 {
		return candidates[0], make([]float64, len(candidates)), nil
	}
	rng := rand.New(rand.NewSource(seed))

	// Collect and split edges.
	type edge struct{ u, v int32 }
	var edges []edge
	for u := int32(0); int(u) < nL; u++ {
		for _, v := range b.Fwd(u) {
			edges = append(edges, edge{u, v})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	nHold := len(edges) / 10
	if nHold < 5 {
		nHold = 5
	}
	if nHold > len(edges)/2 {
		nHold = len(edges) / 2
	}
	held := edges[:nHold]
	train := edges[nHold:]

	// Training graph keeps every node so indices line up.
	tb := graph.NewBipartite(nL, nR)
	for u := int32(0); int(u) < nL; u++ {
		tb.AddLeft(b.LeftLabel(u))
	}
	for v := int32(0); int(v) < nR; v++ {
		tb.AddRight(b.RightLabel(v))
	}
	for _, e := range train {
		tb.AddEdge(b.LeftLabel(e.u), b.RightLabel(e.v))
	}
	tb.SortAdjacency()

	// Negative samples: uniform non-edges of the full graph.
	negs := make([]edge, 0, nHold)
	for len(negs) < nHold {
		u := int32(rng.Intn(nL))
		v := int32(rng.Intn(nR))
		if !b.HasEdge(b.LeftLabel(u), b.RightLabel(v)) {
			negs = append(negs, edge{u, v})
		}
	}

	aucs := make([]float64, len(candidates))
	bestK, bestAUC := candidates[0], -1.0
	for ci, k := range candidates {
		coda := &CoDA{K: k, Seed: seed}
		F, H, err := coda.fit(tb)
		if err != nil {
			return 0, nil, err
		}
		score := func(e edge) float64 {
			var dot float64
			for j := 0; j < k; j++ {
				dot += F[e.u][j] * H[e.v][j]
			}
			return 1 - math.Exp(-dot)
		}
		// Rank-based AUC over held-out positives vs sampled negatives.
		type scored struct {
			s   float64
			pos bool
		}
		all := make([]scored, 0, len(held)+len(negs))
		for _, e := range held {
			all = append(all, scored{score(e), true})
		}
		for _, e := range negs {
			all = append(all, scored{score(e), false})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
		var rankSum float64
		i := 0
		rank := 1.0
		for i < len(all) {
			j := i
			for j+1 < len(all) && all[j+1].s == all[i].s {
				j++
			}
			avg := (rank + rank + float64(j-i)) / 2
			for t := i; t <= j; t++ {
				if all[t].pos {
					rankSum += avg
				}
			}
			rank += float64(j - i + 1)
			i = j + 1
		}
		nPos, nNeg := float64(len(held)), float64(len(negs))
		auc := (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
		aucs[ci] = auc
		if auc > bestAUC {
			bestK, bestAUC = k, auc
		}
	}
	return bestK, aucs, nil
}
