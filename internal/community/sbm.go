package community

import (
	"fmt"
	"math"
	"math/rand"

	"crowdscope/internal/graph"
)

// SBM infers communities with a degree-corrected stochastic block model
// (Karrer–Newman), the method the paper proposes for its future
// longitudinal analysis (Section 7, citing Choi–Wolfe–Airoldi). Inference
// runs on the weighted one-mode projection of the directed bipartite
// investment graph: spectral initialization (orthogonal iteration on the
// normalized adjacency, then k-means on the embeddings) followed by
// greedy single-node moves that maximize the DC-SBM profile
// log-likelihood
//
//	L = Σ_{rs} m_rs log( m_rs / (κ_r κ_s) )
//
// where m_rs is the weight between blocks r and s and κ_r the total
// degree of block r.
type SBM struct {
	K          int
	MinShared  int // projection threshold; default 1
	MaxSweeps  int // greedy refinement sweeps; default 20
	PowerIters int // orthogonal-iteration steps; default 50
	Seed       int64
	MinMembers int // default 3
}

// Name implements Detector.
func (s *SBM) Name() string { return "sbm" }

// Detect implements Detector.
func (s *SBM) Detect(bp graph.BipartiteView) (*Assignment, error) {
	if s.K <= 0 {
		return nil, fmt.Errorf("community: SBM needs K > 0, got %d", s.K)
	}
	n := bp.NumLeft()
	if n == 0 {
		return &Assignment{}, nil
	}
	minShared := s.MinShared
	if minShared <= 0 {
		minShared = 1
	}
	maxSweeps := s.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 20
	}
	powerIters := s.PowerIters
	if powerIters <= 0 {
		powerIters = 50
	}
	minMembers := s.MinMembers
	if minMembers <= 0 {
		minMembers = 3
	}
	K := s.K
	if K > n {
		K = n
	}

	type wEdge struct {
		to int32
		w  float64
	}
	adj := make([][]wEdge, n)
	deg := make([]float64, n)
	for _, e := range graph.ProjectLeft(bp, minShared) {
		adj[e.U] = append(adj[e.U], wEdge{e.V, e.Weight})
		adj[e.V] = append(adj[e.V], wEdge{e.U, e.Weight})
		deg[e.U] += e.Weight
		deg[e.V] += e.Weight
	}

	rng := rand.New(rand.NewSource(s.Seed))

	// --- Spectral embedding: orthogonal iteration on D^-1/2 A D^-1/2. ---
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			invSqrt[i] = 1 / math.Sqrt(d)
		}
	}
	dim := K
	vecs := make([][]float64, dim)
	for d := range vecs {
		vecs[d] = make([]float64, n)
		for i := range vecs[d] {
			vecs[d][i] = rng.NormFloat64()
		}
	}
	tmp := make([]float64, n)
	apply := func(x, out []float64) {
		for i := range out {
			out[i] = 0
		}
		for u := 0; u < n; u++ {
			xu := x[u] * invSqrt[u]
			for _, e := range adj[u] {
				out[e.to] += e.w * xu * invSqrt[e.to]
			}
		}
	}
	for it := 0; it < powerIters; it++ {
		for d := range vecs {
			apply(vecs[d], tmp)
			copy(vecs[d], tmp)
		}
		gramSchmidt(vecs)
	}

	// --- k-means on per-node embeddings (rows of the vecs matrix). ---
	emb := make([][]float64, n)
	for i := range emb {
		emb[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			emb[i][d] = vecs[d][i]
		}
	}
	blocks := kmeans(emb, K, 25, rng)

	// --- Greedy DC-SBM refinement. ---
	// Isolated nodes stay out of the likelihood (zero degree).
	m := newMatrix(K, K) // block-to-block weights (symmetric, double-count off-diagonal)
	kappa := make([]float64, K)
	for u := 0; u < n; u++ {
		kappa[blocks[u]] += deg[u]
		for _, e := range adj[u] {
			m[blocks[u]][blocks[e.to]] += e.w
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	wTo := make([]float64, K)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		moves := 0
		for _, u := range order {
			if deg[u] == 0 {
				continue
			}
			cur := blocks[u]
			for k := range wTo {
				wTo[k] = 0
			}
			var selfLoop float64
			for _, e := range adj[u] {
				if int(e.to) == u {
					selfLoop += e.w
					continue
				}
				wTo[blocks[e.to]] += e.w
			}
			best, bestDelta := cur, 0.0
			for cand := 0; cand < K; cand++ {
				if cand == cur {
					continue
				}
				delta := dcsbmMoveDelta(m, kappa, wTo, deg[u], selfLoop, cur, cand, K)
				if delta > bestDelta+1e-9 {
					best, bestDelta = cand, delta
				}
			}
			if best != cur {
				applyMove(m, kappa, wTo, deg[u], selfLoop, cur, best)
				blocks[u] = best
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}

	groups := map[int][]int32{}
	for u := 0; u < n; u++ {
		if deg[u] == 0 {
			continue
		}
		groups[blocks[u]] = append(groups[blocks[u]], int32(u))
	}
	a := &Assignment{}
	for _, members := range groups {
		if len(members) >= minMembers {
			a.Investors = append(a.Investors, members)
		}
	}
	a.normalize()
	sortCommunities(a)
	return a, nil
}

// dcsbmLikelihood computes Σ_rs m_rs log(m_rs/(κ_r κ_s)) over non-zero
// entries.
func dcsbmLikelihood(m [][]float64, kappa []float64, K int) float64 {
	var l float64
	for r := 0; r < K; r++ {
		if kappa[r] == 0 {
			continue
		}
		for s := 0; s < K; s++ {
			if m[r][s] > 0 && kappa[s] > 0 {
				l += m[r][s] * math.Log(m[r][s]/(kappa[r]*kappa[s]))
			}
		}
	}
	return l
}

// dcsbmMoveDelta evaluates the likelihood change of moving a node with
// the given degree, neighbor-block weights and self-loop from block cur
// to cand, by applying, measuring and reverting.
func dcsbmMoveDelta(m [][]float64, kappa, wTo []float64, degU, selfLoop float64, cur, cand, K int) float64 {
	before := dcsbmLikelihood(m, kappa, K)
	applyMove(m, kappa, wTo, degU, selfLoop, cur, cand)
	after := dcsbmLikelihood(m, kappa, K)
	applyMove(m, kappa, wTo, degU, selfLoop, cand, cur) // revert (wTo unchanged by the move since u's neighbors stay put)
	return after - before
}

// applyMove updates the block matrices for moving one node from block a
// to block b.
func applyMove(m [][]float64, kappa, wTo []float64, degU, selfLoop float64, a, b int) {
	for s := range wTo {
		w := wTo[s]
		if w == 0 {
			continue
		}
		m[a][s] -= w
		m[s][a] -= w
		m[b][s] += w
		m[s][b] += w
	}
	// Self-loops and the node's own block membership interplay: edges to
	// same-block neighbors were counted in wTo[a] before the move; the
	// above handles them because wTo is expressed in *neighbor* blocks,
	// which do not change. Self-loops move wholly.
	m[a][a] -= 2 * selfLoop
	m[b][b] += 2 * selfLoop
	kappa[a] -= degU
	kappa[b] += degU
}

// gramSchmidt orthonormalizes the vectors in place.
func gramSchmidt(vecs [][]float64) {
	for i := range vecs {
		for j := 0; j < i; j++ {
			var dot float64
			for k := range vecs[i] {
				dot += vecs[i][k] * vecs[j][k]
			}
			for k := range vecs[i] {
				vecs[i][k] -= dot * vecs[j][k]
			}
		}
		var norm float64
		for _, v := range vecs[i] {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue
		}
		for k := range vecs[i] {
			vecs[i][k] /= norm
		}
	}
}

// kmeans clusters points into K groups with k-means++ style seeding and
// Lloyd iterations, returning per-point assignments.
func kmeans(points [][]float64, K, iters int, rng *rand.Rand) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	dim := len(points[0])
	centers := make([][]float64, 0, K)
	centers = append(centers, append([]float64(nil), points[rng.Intn(n)]...))
	dist2 := func(a, b []float64) float64 {
		var d float64
		for i := range a {
			diff := a[i] - b[i]
			d += diff * diff
		}
		return d
	}
	for len(centers) < K {
		// k-means++: sample proportional to squared distance to nearest
		// center.
		ds := make([]float64, n)
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := dist2(p, c); d < best {
					best = d
				}
			}
			ds[i] = best
			total += best
		}
		if total == 0 {
			centers = append(centers, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range ds {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), points[idx]...))
	}
	assign := make([]int, n)
	counts := make([]int, K)
	for it := 0; it < iters; it++ {
		changed := 0
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := dist2(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || it == 0 {
				if assign[i] != best {
					changed++
				}
				assign[i] = best
			}
		}
		if it > 0 && changed == 0 {
			break
		}
		for c := range centers {
			for d := 0; d < dim; d++ {
				centers[c][d] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				copy(centers[c], points[rng.Intn(n)])
				continue
			}
			for d := 0; d < dim; d++ {
				centers[c][d] /= float64(counts[c])
			}
		}
	}
	return assign
}
