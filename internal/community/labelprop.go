package community

import (
	"math/rand"

	"crowdscope/internal/graph"
)

// LabelProp runs weighted asynchronous label propagation on the one-mode
// projection of the investor graph: each node repeatedly adopts the label
// with the greatest total edge weight among its neighbors until labels
// stabilize. It produces disjoint communities and represents the
// "standard community detection on undirected graphs" family the paper
// contrasts CoDA with.
type LabelProp struct {
	MinShared  int // projection threshold; default 1
	MaxIter    int // default 30
	Seed       int64
	MinMembers int // default 3
}

// Name implements Detector.
func (l *LabelProp) Name() string { return "labelprop" }

// Detect implements Detector.
func (l *LabelProp) Detect(bp graph.BipartiteView) (*Assignment, error) {
	n := bp.NumLeft()
	if n == 0 {
		return &Assignment{}, nil
	}
	minShared := l.MinShared
	if minShared <= 0 {
		minShared = 1
	}
	maxIter := l.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}
	minMembers := l.MinMembers
	if minMembers <= 0 {
		minMembers = 3
	}
	type wEdge struct {
		to int32
		w  float64
	}
	adj := make([][]wEdge, n)
	for _, e := range graph.ProjectLeft(bp, minShared) {
		adj[e.U] = append(adj[e.U], wEdge{to: e.V, w: e.Weight})
		adj[e.V] = append(adj[e.V], wEdge{to: e.U, w: e.Weight})
	}

	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(l.Seed))
	votes := map[int32]float64{}
	for iter := 0; iter < maxIter; iter++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := 0
		for _, u := range order {
			if len(adj[u]) == 0 {
				continue
			}
			clear(votes)
			for _, e := range adj[u] {
				votes[labels[e.to]] += e.w
			}
			best := labels[u]
			bestW := votes[best] // stickiness: stay unless strictly better
			for lab, w := range votes {
				if w > bestW || (w == bestW && lab < best) {
					best, bestW = lab, w
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}

	groups := map[int32][]int32{}
	for u, lab := range labels {
		if len(adj[u]) == 0 {
			continue // isolated investors form no community
		}
		groups[lab] = append(groups[lab], int32(u))
	}
	a := &Assignment{}
	for _, members := range groups {
		if len(members) >= minMembers {
			a.Investors = append(a.Investors, members)
		}
	}
	a.normalize()
	// Deterministic community order: by first (smallest) member.
	sortCommunities(a)
	return a, nil
}

func sortCommunities(a *Assignment) {
	type pair struct {
		inv  []int32
		comp []int32
	}
	ps := make([]pair, len(a.Investors))
	for i := range a.Investors {
		ps[i].inv = a.Investors[i]
		if i < len(a.Companies) {
			ps[i].comp = a.Companies[i]
		}
	}
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j].inv, ps[j-1].inv); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	a.Investors = a.Investors[:0]
	a.Companies = a.Companies[:0]
	for _, p := range ps {
		a.Investors = append(a.Investors, p.inv)
		a.Companies = append(a.Companies, p.comp)
	}
}

func less(a, b []int32) bool {
	if len(a) == 0 {
		return true
	}
	if len(b) == 0 {
		return false
	}
	return a[0] < b[0]
}
