package community

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crowdscope/internal/graph"
	"crowdscope/internal/parallel"
)

// CoDA fits the Communities-through-Directed-Affiliations model of
// Yang–McAuley–Leskovec (WSDM'14) to a directed bipartite graph: every
// investor u carries an outgoing-membership vector F_u ≥ 0, every company
// v an incoming-membership vector H_v ≥ 0, and an investment edge u→v
// occurs with probability 1 − exp(−F_u·H_v). The fit maximizes the
// log-likelihood
//
//	L = Σ_{(u,v)∈E} log(1 − exp(−F_u·H_v)) − Σ_{(u,v)∉E} F_u·H_v
//
// by block-coordinate projected gradient ascent with backtracking line
// search; the bipartite structure makes the non-edge term exact via
// column-sum caches (no negative sampling needed). Nodes whose membership
// weight clears the background-density threshold δ = sqrt(−log(1−ε)) form
// each community.
type CoDA struct {
	// K is the number of communities to fit (the paper's run found 96 at
	// full scale).
	K int
	// MaxIter bounds outer sweeps; default 50.
	MaxIter int
	// Tol stops when the relative likelihood improvement per sweep falls
	// below it; default 1e-4.
	Tol float64
	// Seed drives initialization noise.
	Seed int64
	// MinMembers drops communities with fewer investor members; default 3.
	MinMembers int
	// Workers bounds the parallelism of the block-coordinate sweeps;
	// <= 0 selects the process-default pool. Rows within a sweep are
	// independent given the opposite matrix and the column-sum caches,
	// and cache updates merge in row order, so the fit is bit-identical
	// for every worker count.
	Workers int
}

// Name implements Detector.
func (c *CoDA) Name() string { return "coda" }

// fit runs the gradient ascent and returns the membership matrices F
// (investors, outgoing) and H (companies, incoming). Used by Detect and
// by SelectK's held-out scoring.
func (c *CoDA) fit(b graph.BipartiteView) (F, H [][]float64, err error) {
	if c.K <= 0 {
		return nil, nil, fmt.Errorf("community: CoDA needs K > 0, got %d", c.K)
	}
	nL, nR := b.NumLeft(), b.NumRight()
	maxIter := c.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	tol := c.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	K := c.K
	rng := rand.New(rand.NewSource(c.Seed))

	F = newMatrix(nL, K)
	H = newMatrix(nR, K)
	if nL == 0 || nR == 0 || b.NumEdges() == 0 {
		return F, H, nil
	}
	c.seed(b, F, H, rng)

	// Column-sum caches.
	SF := colSums(F, K)
	SH := colSums(H, K)

	// Per-worker scratch for the parallel sweeps. Within a sweep every
	// row update reads only its own row, the (frozen) opposite matrix and
	// the opposite column-sum cache; the row's own cache is written but
	// never read, so deferring those writes to the ordered merge phase
	// reproduces the serial accumulation order exactly.
	pool := parallel.New(c.Workers)
	rows := nL
	if nR > rows {
		rows = nR
	}
	scratch := make([]*rowScratch, pool.WorkersFor(rows))
	for i := range scratch {
		scratch[i] = newRowScratch(K)
	}

	prevL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		var total float64
		// Sweep investors.
		pool.Ordered(nL,
			func(w, u int) {
				sc := scratch[w]
				sc.lik = updateRow(F[u], b.Fwd(int32(u)), H, SH, sc)
			},
			func(w, u int) {
				sc := scratch[w]
				total += sc.lik
				for k := 0; k < K; k++ {
					SF[k] += sc.diff[k]
				}
			})
		// Sweep companies (their neighbors are investors, roles swapped).
		pool.Ordered(nR,
			func(w, v int) {
				sc := scratch[w]
				sc.lik = updateRow(H[v], b.Rev(int32(v)), F, SF, sc)
			},
			func(w, v int) {
				sc := scratch[w]
				for k := 0; k < K; k++ {
					SH[k] += sc.diff[k]
				}
			})
		if prevL != math.Inf(-1) {
			denom := math.Abs(prevL)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if (total-prevL)/denom < tol && total >= prevL {
				prevL = total
				break
			}
		}
		prevL = total
	}
	return F, H, nil
}

// Detect implements Detector.
func (c *CoDA) Detect(b graph.BipartiteView) (*Assignment, error) {
	nL, nR := b.NumLeft(), b.NumRight()
	F, H, err := c.fit(b)
	if err != nil {
		return nil, err
	}
	if nL == 0 || nR == 0 || b.NumEdges() == 0 {
		return &Assignment{}, nil
	}
	minMembers := c.MinMembers
	if minMembers <= 0 {
		minMembers = 3
	}
	K := c.K

	// Threshold memberships by the background edge density.
	eps := float64(b.NumEdges()) / (float64(nL) * float64(nR))
	if eps >= 1 {
		eps = 0.999
	}
	delta := math.Sqrt(-math.Log(1 - eps))
	a := &Assignment{
		Investors: make([][]int32, K),
		Companies: make([][]int32, K),
	}
	for u := 0; u < nL; u++ {
		for k := 0; k < K; k++ {
			if F[u][k] >= delta {
				a.Investors[k] = append(a.Investors[k], int32(u))
			}
		}
	}
	for v := 0; v < nR; v++ {
		for k := 0; k < K; k++ {
			if H[v][k] >= delta {
				a.Companies[k] = append(a.Companies[k], int32(v))
			}
		}
	}
	// Drop undersized communities.
	var inv, comp [][]int32
	for k := 0; k < K; k++ {
		if len(a.Investors[k]) >= minMembers {
			inv = append(inv, a.Investors[k])
			comp = append(comp, a.Companies[k])
		}
	}
	a.Investors, a.Companies = inv, comp
	a.normalize()
	return a, nil
}

// seed initializes memberships from the neighborhoods of high-degree
// investors (an approximation of CoDA's locally-minimal-conductance
// seeding) plus uniform noise.
func (c *CoDA) seed(b graph.BipartiteView, F, H [][]float64, rng *rand.Rand) {
	nL := b.NumLeft()
	nR := b.NumRight()
	K := c.K
	// Noise floor, scaled so a whole column's background mass stays O(1):
	// with per-entry noise ~0.1 the non-edge penalty Σ_v H_v would swamp
	// the edge term on graphs with many companies and the gradient would
	// zero the seeds out.
	fNoise := 2.0 / float64(nR)
	hNoise := 2.0 / float64(nL)
	for u := range F {
		for k := range F[u] {
			F[u][k] = rng.Float64() * fNoise
		}
	}
	for v := range H {
		for k := range H[v] {
			H[v][k] = rng.Float64() * hNoise
		}
	}
	// Degree-ranked seed investors, skipping ones already claimed so
	// seeds spread across the graph.
	order := make([]int32, nL)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := b.OutDegree(order[i]), b.OutDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	claimed := make([]bool, nL)
	k := 0
	for _, u := range order {
		if k >= K {
			break
		}
		if claimed[u] {
			continue
		}
		// Seed community k with u, u's companies, and u's co-investors.
		F[u][k] = 1
		claimed[u] = true
		for _, v := range b.Fwd(u) {
			H[v][k] = 1
			for _, w := range b.Rev(v) {
				F[w][k] = 1
				claimed[w] = true
			}
		}
		k++
	}
	// Any remaining communities start from random investors.
	for ; k < K; k++ {
		u := int32(rng.Intn(nL))
		F[u][k] = 1
		for _, v := range b.Fwd(u) {
			H[v][k] = 1
		}
	}
}

// rowScratch holds one worker's reusable buffers for updateRow plus the
// per-row outputs (cache diff, likelihood) consumed by the ordered merge.
type rowScratch struct {
	grad, nbrSum, newX, nbr []float64
	// diff is the row's column-sum cache delta (newX − X, or zeros when
	// the line search rejects); lik the row's post-update likelihood.
	diff []float64
	lik  float64
}

func newRowScratch(k int) *rowScratch {
	return &rowScratch{
		grad:   make([]float64, k),
		nbrSum: make([]float64, k),
		newX:   make([]float64, k),
		nbr:    make([]float64, k),
		diff:   make([]float64, k),
	}
}

// updateRow performs one projected-gradient step with backtracking for a
// single row X (either an F_u against H, or an H_v against F), returning
// the row's post-update local likelihood. neighbors are the row's linked
// opposite-side nodes; sumOther is the column-sum cache of the opposite
// matrix. X is updated in place; the caller applies sc.diff to the row's
// own column-sum cache (in row order, to keep the fit deterministic).
func updateRow(X []float64, neighbors []int32, other [][]float64, sumOther []float64, sc *rowScratch) float64 {
	K := len(X)
	grad := sc.grad
	nbrSum := sc.nbrSum
	for k := 0; k < K; k++ {
		grad[k] = 0
		nbrSum[k] = 0
		sc.diff[k] = 0
	}
	// Gradient: Σ_{v∈N} other_v * e^{-x}/(1-e^{-x}) − (sumOther − Σ_{v∈N} other_v).
	for _, v := range neighbors {
		row := other[v]
		dot := dotClamped(X, row)
		e := math.Exp(-dot)
		coef := e / (1 - e)
		for k := 0; k < K; k++ {
			grad[k] += row[k] * coef
			nbrSum[k] += row[k]
		}
	}
	for k := 0; k < K; k++ {
		grad[k] -= sumOther[k] - nbrSum[k]
	}
	// Backtracking line search on the row likelihood.
	base := rowLikelihood(X, neighbors, other, sumOther, sc.nbr)
	eta := 0.05
	newX := sc.newX
	for step := 0; step < 10; step++ {
		for k := 0; k < K; k++ {
			v := X[k] + eta*grad[k]
			if v < 0 {
				v = 0
			}
			if v > 1000 {
				v = 1000
			}
			newX[k] = v
		}
		if l := rowLikelihood(newX, neighbors, other, sumOther, sc.nbr); l > base {
			for k := 0; k < K; k++ {
				sc.diff[k] = newX[k] - X[k]
				X[k] = newX[k]
			}
			return l
		}
		eta /= 2
	}
	return base
}

// rowLikelihood computes Σ_{v∈N} log(1−e^{−X·other_v}) − X·(sumOther − Σ_{v∈N} other_v).
// nbr is a caller-provided scratch buffer of length len(X).
func rowLikelihood(X []float64, neighbors []int32, other [][]float64, sumOther, nbr []float64) float64 {
	var l float64
	for k := range nbr {
		nbr[k] = 0
	}
	for _, v := range neighbors {
		row := other[v]
		dot := dotClamped(X, row)
		l += math.Log(1 - math.Exp(-dot))
		for k := range nbr {
			nbr[k] += row[k]
		}
	}
	for k := range X {
		l -= X[k] * (sumOther[k] - nbr[k])
	}
	return l
}

// dotClamped returns max(X·Y, 1e-10) so log(1−e^{−dot}) stays finite.
func dotClamped(x, y []float64) float64 {
	var d float64
	for k := range x {
		d += x[k] * y[k]
	}
	if d < 1e-10 {
		d = 1e-10
	}
	return d
}

func newMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return m
}

func colSums(m [][]float64, k int) []float64 {
	s := make([]float64, k)
	for _, row := range m {
		for j, v := range row {
			s[j] += v
		}
	}
	return s
}
